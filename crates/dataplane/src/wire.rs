//! The GRED packet wire format and its programmable parser.
//!
//! The paper's P4 switch "supports a programmable parser to allow new
//! headers to be defined". This module defines the custom GRED header the
//! prototype parses and reproduces that parser: a byte-level encoding of
//! [`Packet`] with a fixed header, an optional virtual-link relay header
//! (present iff the RELAY flag is set), and the payload.
//!
//! ```text
//!  0       1       2       3       4
//!  +-------+-------+-------+-------+
//!  | magic "GR"    | ver=1 | flags |     flags: bit0 = relay present
//!  +-------+-------+-------+-------+            bit1 = status not-found
//!  | kind  |      id_len (u16)     |            bit2 = status error
//!  +-------+-------+-------+-------+            bit3 = status redirect
//!  |        pos_x  (f64 be)        |            bit4 = status degraded
//!  |        pos_y  (f64 be)        |     kind: 0 place, 1 retrieve,
//!  +---------------+---------------+           2 response, 3 invalidate,
//!  | hops (u16 be) | detours (u16) |           4 stats, 5 stats-resp,
//!  +---------------+---------------+           6 admin, 7 admin-resp
//!  | [relay: dest, sour, relay as u32 be each — iff flag bit0]
//!  +-------------------------------+
//!  | id bytes (id_len)             |
//!  | payload (rest of the packet)  |
//!  +-------------------------------+
//! ```
//!
//! The status bits (1–4) are mutually exclusive and only valid on
//! response packets — they let a remote client distinguish a hit from a
//! miss (`NotFound`), from a server-side failure (`Error`), from a
//! routing abort on suspect peers (`Redirect`), and from a served-but-
//! detoured delivery (`Degraded`); requests always travel with all
//! status bits clear.

use crate::packet::{Packet, PacketKind, RelayHeader, ResponseStatus};
use bytes::Bytes;
use gred_geometry::Point2;
use gred_hash::DataId;

/// Wire magic: ASCII "GR".
const MAGIC: [u8; 2] = *b"GR";
/// Batch-container magic: ASCII "GB". Distinguishable from a single
/// packet at byte 1 (`'B'` vs `'R'`), so a node can sniff which form a
/// frame body carries without a separate negotiation.
const BATCH_MAGIC: [u8; 2] = *b"GB";
/// Current header version.
const VERSION: u8 = 1;
/// Flag bit: a relay header follows the fixed header.
const FLAG_RELAY: u8 = 0b0000_0001;
/// Flag bit: response status `NotFound`.
const FLAG_NOT_FOUND: u8 = 0b0000_0010;
/// Flag bit: response status `Error`.
const FLAG_ERROR: u8 = 0b0000_0100;
/// Flag bit: response status `Redirect` (routing aborted on suspects).
const FLAG_REDIRECT: u8 = 0b0000_1000;
/// Flag bit: response status `Degraded` (served via a detour).
const FLAG_DEGRADED: u8 = 0b0001_0000;
/// Every status flag bit (mutually exclusive on the wire).
const STATUS_FLAGS: u8 = FLAG_NOT_FOUND | FLAG_ERROR | FLAG_REDIRECT | FLAG_DEGRADED;
/// Every flag bit this parser understands.
const KNOWN_FLAGS: u8 = FLAG_RELAY | STATUS_FLAGS;

/// Error produced by [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Fewer bytes than the fixed header requires.
    Truncated {
        /// Bytes needed to continue parsing.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The first two bytes are not the GRED magic.
    BadMagic,
    /// Unsupported header version.
    BadVersion(u8),
    /// Unknown packet kind discriminant.
    BadKind(u8),
    /// Flags contain bits this parser does not understand.
    UnknownFlags(u8),
    /// Status flag bits are contradictory (both set) or set on a request
    /// packet — only responses carry a status.
    BadStatus {
        /// The offending flag byte.
        flags: u8,
        /// The wire kind discriminant the status appeared on.
        kind: u8,
    },
    /// A position coordinate is not finite.
    BadPosition,
    /// Bytes remain after a packet whose kind carries no payload
    /// (retrieval requests): the buffer is corrupt or concatenated.
    TrailingGarbage {
        /// Number of unexpected trailing bytes.
        extra: usize,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Truncated { needed, have } => {
                write!(f, "packet truncated: need {needed} bytes, have {have}")
            }
            ParseError::BadMagic => write!(f, "missing GRED magic bytes"),
            ParseError::BadVersion(v) => write!(f, "unsupported header version {v}"),
            ParseError::BadKind(k) => write!(f, "unknown packet kind {k}"),
            ParseError::UnknownFlags(b) => write!(f, "unknown flag bits {b:#010b}"),
            ParseError::BadStatus { flags, kind } => {
                write!(f, "invalid status flags {flags:#010b} on kind {kind}")
            }
            ParseError::BadPosition => write!(f, "non-finite virtual position"),
            ParseError::TrailingGarbage { extra } => {
                write!(f, "{extra} trailing bytes after a payload-less packet")
            }
        }
    }
}

impl std::error::Error for ParseError {}

fn kind_to_wire(kind: PacketKind) -> u8 {
    match kind {
        PacketKind::Placement => 0,
        PacketKind::Retrieval => 1,
        PacketKind::RetrievalResponse => 2,
        PacketKind::Invalidate => 3,
        PacketKind::Stats => 4,
        PacketKind::StatsResponse => 5,
        PacketKind::Admin => 6,
        PacketKind::AdminResponse => 7,
    }
}

fn kind_from_wire(b: u8) -> Result<PacketKind, ParseError> {
    match b {
        0 => Ok(PacketKind::Placement),
        1 => Ok(PacketKind::Retrieval),
        2 => Ok(PacketKind::RetrievalResponse),
        3 => Ok(PacketKind::Invalidate),
        4 => Ok(PacketKind::Stats),
        5 => Ok(PacketKind::StatsResponse),
        6 => Ok(PacketKind::Admin),
        7 => Ok(PacketKind::AdminResponse),
        other => Err(ParseError::BadKind(other)),
    }
}

/// Serializes a packet to its wire representation.
///
/// # Panics
///
/// Panics if the data identifier exceeds 65535 bytes (the header's u16
/// length field); GRED identifiers are short names.
pub fn encode(packet: &Packet) -> Vec<u8> {
    let id_bytes = packet.id.as_bytes();
    let relay_len = if packet.relay.is_some() { 12 } else { 0 };
    let mut out = Vec::with_capacity(29 + relay_len + id_bytes.len() + packet.payload.len());
    encode_into(packet, &mut out);
    out
}

/// Serializes a packet by appending to `out`, so callers on the hot
/// path can reuse one encode buffer across packets instead of
/// allocating a fresh `Vec` per send. `out` is *not* cleared — the
/// cluster layer appends a frame prefix first, then the packet.
///
/// # Panics
///
/// Panics if the data identifier exceeds 65535 bytes (the header's u16
/// length field); GRED identifiers are short names.
pub fn encode_into(packet: &Packet, out: &mut Vec<u8>) {
    let id_bytes = packet.id.as_bytes();
    assert!(
        id_bytes.len() <= u16::MAX as usize,
        "identifier too long for wire format"
    );

    let mut flags = 0u8;
    if packet.relay.is_some() {
        flags |= FLAG_RELAY;
    }
    match packet.status {
        ResponseStatus::Ok => {}
        ResponseStatus::NotFound => flags |= FLAG_NOT_FOUND,
        ResponseStatus::Error => flags |= FLAG_ERROR,
        ResponseStatus::Redirect => flags |= FLAG_REDIRECT,
        ResponseStatus::Degraded => flags |= FLAG_DEGRADED,
    }

    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(flags);
    out.push(kind_to_wire(packet.kind));
    out.extend_from_slice(&(id_bytes.len() as u16).to_be_bytes());
    out.extend_from_slice(&packet.position.x.to_be_bytes());
    out.extend_from_slice(&packet.position.y.to_be_bytes());
    out.extend_from_slice(&packet.hops.to_be_bytes());
    out.extend_from_slice(&packet.detours.to_be_bytes());
    if let Some(relay) = packet.relay {
        out.extend_from_slice(&(relay.dest as u32).to_be_bytes());
        out.extend_from_slice(&(relay.sour as u32).to_be_bytes());
        out.extend_from_slice(&(relay.relay as u32).to_be_bytes());
    }
    out.extend_from_slice(id_bytes);
    out.extend_from_slice(&packet.payload);
}

/// Parses a wire packet — the software equivalent of the P4 programmable
/// parser.
///
/// # Errors
///
/// Returns a [`ParseError`] for truncated, malformed, or unsupported
/// packets.
pub fn parse(bytes: &[u8]) -> Result<Packet, ParseError> {
    let (mut packet, payload_at) = parse_header(bytes)?;
    packet.payload = Bytes::copy_from_slice(&bytes[payload_at..]);
    check_payload(&packet)?;
    Ok(packet)
}

/// Parses a wire packet whose buffer is already reference-counted,
/// slicing the payload out of `body` with **no copy** — every later
/// holder of the payload (the node store, a forwarded packet, a
/// response) shares the frame body's allocation.
///
/// # Errors
///
/// Same conditions as [`parse`].
pub fn parse_bytes(body: &Bytes) -> Result<Packet, ParseError> {
    let (mut packet, payload_at) = parse_header(body)?;
    packet.payload = body.slice(payload_at..);
    check_payload(&packet)?;
    Ok(packet)
}

/// Retrieval requests, invalidation notices, and stats scrapes carry no
/// payload, so anything past the id is not part of the packet — reject
/// it instead of silently absorbing it.
fn check_payload(packet: &Packet) -> Result<(), ParseError> {
    let payload_free = matches!(
        packet.kind,
        PacketKind::Retrieval | PacketKind::Invalidate | PacketKind::Stats
    );
    if payload_free && !packet.payload.is_empty() {
        return Err(ParseError::TrailingGarbage {
            extra: packet.payload.len(),
        });
    }
    Ok(())
}

/// Parses everything up to the payload, returning the packet (with an
/// empty payload) and the offset where the payload starts.
fn parse_header(bytes: &[u8]) -> Result<(Packet, usize), ParseError> {
    const FIXED: usize = 2 + 1 + 1 + 1 + 2 + 8 + 8 + 2 + 2; // through detours
    if bytes.len() < FIXED {
        return Err(ParseError::Truncated {
            needed: FIXED,
            have: bytes.len(),
        });
    }
    if bytes[0..2] != MAGIC {
        return Err(ParseError::BadMagic);
    }
    if bytes[2] != VERSION {
        return Err(ParseError::BadVersion(bytes[2]));
    }
    let flags = bytes[3];
    if flags & !KNOWN_FLAGS != 0 {
        return Err(ParseError::UnknownFlags(flags));
    }
    let kind = kind_from_wire(bytes[4])?;
    let status_bits = flags & STATUS_FLAGS;
    if status_bits.count_ones() > 1 {
        return Err(ParseError::BadStatus {
            flags,
            kind: bytes[4],
        });
    }
    let status = match status_bits {
        0 => ResponseStatus::Ok,
        FLAG_NOT_FOUND => ResponseStatus::NotFound,
        FLAG_ERROR => ResponseStatus::Error,
        FLAG_REDIRECT => ResponseStatus::Redirect,
        _ => ResponseStatus::Degraded,
    };
    // A status is a response property; a tagged request is corrupt.
    if status != ResponseStatus::Ok && !kind.is_response() {
        return Err(ParseError::BadStatus {
            flags,
            kind: bytes[4],
        });
    }
    let id_len = u16::from_be_bytes([bytes[5], bytes[6]]) as usize;
    let x = f64::from_be_bytes(bytes[7..15].try_into().expect("8 bytes"));
    let y = f64::from_be_bytes(bytes[15..23].try_into().expect("8 bytes"));
    if !x.is_finite() || !y.is_finite() {
        return Err(ParseError::BadPosition);
    }
    let hops = u16::from_be_bytes([bytes[23], bytes[24]]);
    let detours = u16::from_be_bytes([bytes[25], bytes[26]]);

    let mut offset = FIXED;
    let relay = if flags & FLAG_RELAY != 0 {
        if bytes.len() < offset + 12 {
            return Err(ParseError::Truncated {
                needed: offset + 12,
                have: bytes.len(),
            });
        }
        let dest = u32::from_be_bytes(bytes[offset..offset + 4].try_into().expect("4")) as usize;
        let sour =
            u32::from_be_bytes(bytes[offset + 4..offset + 8].try_into().expect("4")) as usize;
        let relay_sw =
            u32::from_be_bytes(bytes[offset + 8..offset + 12].try_into().expect("4")) as usize;
        offset += 12;
        Some(RelayHeader {
            dest,
            sour,
            relay: relay_sw,
        })
    } else {
        None
    };

    if bytes.len() < offset + id_len {
        return Err(ParseError::Truncated {
            needed: offset + id_len,
            have: bytes.len(),
        });
    }
    let id = DataId::from_bytes(bytes[offset..offset + id_len].to_vec());

    Ok((
        Packet {
            kind,
            id,
            position: Point2::new(x, y),
            relay,
            status,
            hops,
            detours,
            payload: Bytes::new(),
        },
        offset + id_len,
    ))
}

/// Whether `bytes` starts with the batch-container magic — the sniff a
/// node uses to decide whether a frame body is one packet (`"GR"`) or a
/// batch of them (`"GB"`).
pub fn is_batch(bytes: &[u8]) -> bool {
    bytes.len() >= 2 && bytes[0..2] == BATCH_MAGIC
}

/// Serializes `packets` as one batch container by appending to `out`
/// (not cleared — the cluster layer writes a frame prefix first):
///
/// ```text
///  +-------+-------+-------+---------------+
///  | magic "GB"    | ver=1 | count (u16 be)|
///  +-------+-------+-------+---------------+
///  | per packet: length (u32 be) + wire packet bytes
///  +---------------------------------------+
/// ```
///
/// One batch frame costs one syscall on each side instead of one per
/// packet — the wire-level half of killing request/response lockstep.
///
/// # Panics
///
/// Panics if `packets` exceeds 65535 entries (the u16 count); callers
/// chunk far below that.
pub fn encode_batch_into(packets: &[Packet], out: &mut Vec<u8>) {
    assert!(
        packets.len() <= u16::MAX as usize,
        "batch of {} packets exceeds the u16 count field",
        packets.len()
    );
    out.extend_from_slice(&BATCH_MAGIC);
    out.push(VERSION);
    out.extend_from_slice(&(packets.len() as u16).to_be_bytes());
    for packet in packets {
        let len_at = out.len();
        out.extend_from_slice(&[0u8; 4]);
        encode_into(packet, out);
        let len = (out.len() - len_at - 4) as u32;
        out[len_at..len_at + 4].copy_from_slice(&len.to_be_bytes());
    }
}

/// Parses a batch container, slicing each packet's payload out of `body`
/// with no copy (same zero-copy contract as [`parse_bytes`]).
///
/// # Errors
///
/// [`ParseError::BadMagic`]/[`ParseError::BadVersion`] for a corrupt
/// container header, [`ParseError::Truncated`] when the advertised
/// packet lengths overrun the body, [`ParseError::TrailingGarbage`] for
/// bytes past the last packet, and any per-packet parse error as-is.
pub fn parse_batch_bytes(body: &Bytes) -> Result<Vec<Packet>, ParseError> {
    const HEADER: usize = 2 + 1 + 2;
    if body.len() < HEADER {
        return Err(ParseError::Truncated {
            needed: HEADER,
            have: body.len(),
        });
    }
    if body[0..2] != BATCH_MAGIC {
        return Err(ParseError::BadMagic);
    }
    if body[2] != VERSION {
        return Err(ParseError::BadVersion(body[2]));
    }
    let count = u16::from_be_bytes([body[3], body[4]]) as usize;
    let mut packets = Vec::with_capacity(count);
    let mut offset = HEADER;
    for _ in 0..count {
        if body.len() < offset + 4 {
            return Err(ParseError::Truncated {
                needed: offset + 4,
                have: body.len(),
            });
        }
        let len =
            u32::from_be_bytes(body[offset..offset + 4].try_into().expect("4 bytes")) as usize;
        offset += 4;
        if body.len() < offset + len {
            return Err(ParseError::Truncated {
                needed: offset + len,
                have: body.len(),
            });
        }
        let slice = body.slice(offset..offset + len);
        packets.push(parse_bytes(&slice)?);
        offset += len;
    }
    if offset != body.len() {
        return Err(ParseError::TrailingGarbage {
            extra: body.len() - offset,
        });
    }
    Ok(packets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> Packet {
        Packet::placement(DataId::new("cam/1/frame"), b"payload".as_ref())
    }

    #[test]
    fn round_trip_plain() {
        let p = sample();
        let parsed = parse(&encode(&p)).unwrap();
        assert_eq!(parsed, p);
    }

    #[test]
    fn encode_into_appends_after_existing_bytes() {
        let p = sample();
        let mut buf = vec![0xAA, 0xBB];
        encode_into(&p, &mut buf);
        assert_eq!(&buf[..2], &[0xAA, 0xBB]);
        assert_eq!(parse(&buf[2..]).unwrap(), p);
        // Reuse: clearing and re-encoding produces identical bytes.
        buf.clear();
        encode_into(&p, &mut buf);
        assert_eq!(buf, encode(&p));
    }

    #[test]
    fn parse_bytes_payload_shares_the_body_allocation() {
        let p = Packet::response(DataId::new("k"), b"shared-payload".as_ref());
        let body = Bytes::from(encode(&p));
        let parsed = parse_bytes(&body).unwrap();
        assert_eq!(parsed, p);
        // The payload is a view: slicing the body at the same offset
        // yields an equal region, and no copy was made (the shim's
        // slice shares the Arc; equality here is the observable part).
        let offset = body.len() - p.payload.len();
        assert_eq!(parsed.payload, body.slice(offset..));
    }

    #[test]
    fn round_trip_with_relay() {
        let p = Packet::retrieval(DataId::new("k")).with_relay(3, 7, 12);
        let parsed = parse(&encode(&p)).unwrap();
        assert_eq!(parsed, p);
        assert_eq!(
            parsed.relay,
            Some(RelayHeader {
                dest: 12,
                sour: 3,
                relay: 7
            })
        );
    }

    #[test]
    fn round_trip_all_kinds() {
        for p in [
            Packet::placement(DataId::new("a"), b"x".as_ref()),
            Packet::retrieval(DataId::new("b")),
            Packet::response(DataId::new("c"), b"yz".as_ref()),
            Packet::not_found(DataId::new("d")),
            Packet::error_response(DataId::new("e")),
            Packet::redirect_response(DataId::new("f")),
            {
                let mut p = Packet::response(DataId::new("g"), b"w".as_ref());
                p.status = ResponseStatus::Degraded;
                p.detours = 3;
                p
            },
            Packet::invalidate(DataId::new("h")),
            Packet::stats_request(),
            Packet::stats_response(b"snapshot-bytes".as_ref()),
            Packet::admin_request(b"op-bytes".as_ref()),
            Packet::admin_response(b"done".as_ref()),
            Packet::admin_error(b"refused".as_ref()),
        ] {
            assert_eq!(parse(&encode(&p)).unwrap(), p);
        }
    }

    #[test]
    fn round_trip_status_and_hops() {
        let mut p = Packet::not_found(DataId::new("missing/key"));
        p.hops = 7;
        let parsed = parse(&encode(&p)).unwrap();
        assert_eq!(parsed.status, ResponseStatus::NotFound);
        assert_eq!(parsed.hops, 7);
        assert_eq!(parsed, p);

        let mut p = Packet::response(DataId::new("hit"), b"v".as_ref());
        p.hops = u16::MAX;
        p.detours = 42;
        let parsed = parse(&encode(&p)).unwrap();
        assert_eq!(parsed.status, ResponseStatus::Ok);
        assert_eq!(parsed.hops, u16::MAX);
        assert_eq!(parsed.detours, 42);
    }

    #[test]
    fn conflicting_status_bits_rejected() {
        let mut b = encode(&Packet::response(DataId::new("k"), b"v".as_ref()));
        b[3] = 0b0000_0110; // NotFound and Error both set
        assert!(matches!(parse(&b), Err(ParseError::BadStatus { .. })));
    }

    #[test]
    fn status_on_request_rejected() {
        for mk in [
            Packet::placement(DataId::new("k"), b"v".as_ref()),
            Packet::retrieval(DataId::new("k")),
            Packet::invalidate(DataId::new("k")),
            Packet::stats_request(),
            Packet::admin_request(b"op".as_ref()),
        ] {
            let mut b = encode(&mk);
            b[3] |= 0b0000_0010; // NotFound on a request
            assert!(
                matches!(parse(&b), Err(ParseError::BadStatus { .. })),
                "{mk:?}"
            );
        }
    }

    #[test]
    fn status_on_new_response_kinds_accepted() {
        // Error-tagged stats/admin responses are legal wire packets: the
        // endpoint reports refusals in-band exactly like a retrieval miss.
        let mut stats = Packet::stats_response(Bytes::new());
        stats.status = ResponseStatus::Error;
        assert_eq!(parse(&encode(&stats)).unwrap(), stats);
        let admin = Packet::admin_error(b"nope".as_ref());
        assert_eq!(parse(&encode(&admin)).unwrap(), admin);
    }

    #[test]
    fn empty_payload_and_id() {
        let p = Packet::placement(DataId::from_bytes(vec![]), Bytes::new());
        let parsed = parse(&encode(&p)).unwrap();
        assert!(parsed.payload.is_empty());
        assert!(parsed.id.as_bytes().is_empty());
    }

    #[test]
    fn truncation_detected_at_every_prefix() {
        let full = encode(&Packet::retrieval(DataId::new("key")).with_relay(1, 2, 3));
        for len in 0..full.len() {
            let r = parse(&full[..len]);
            assert!(
                matches!(r, Err(ParseError::Truncated { .. })) || r.is_err(),
                "prefix of {len} bytes must not parse"
            );
        }
        assert!(parse(&full).is_ok());
    }

    #[test]
    fn bad_magic_version_kind_flags() {
        let mut b = encode(&sample());
        b[0] = b'X';
        assert_eq!(parse(&b), Err(ParseError::BadMagic));

        let mut b = encode(&sample());
        b[2] = 9;
        assert_eq!(parse(&b), Err(ParseError::BadVersion(9)));

        let mut b = encode(&sample());
        b[4] = 8;
        assert_eq!(parse(&b), Err(ParseError::BadKind(8)));

        let mut b = encode(&sample());
        b[3] = 0b1000_0000;
        assert_eq!(parse(&b), Err(ParseError::UnknownFlags(0b1000_0000)));
    }

    #[test]
    fn non_finite_position_rejected() {
        let mut b = encode(&sample());
        b[7..15].copy_from_slice(&f64::NAN.to_be_bytes());
        assert_eq!(parse(&b), Err(ParseError::BadPosition));
    }

    #[test]
    fn trailing_garbage_on_retrieval_rejected() {
        let mut b = encode(&Packet::retrieval(DataId::new("key")));
        b.extend_from_slice(b"junk");
        assert_eq!(parse(&b), Err(ParseError::TrailingGarbage { extra: 4 }));
        // Stats scrapes are payload-free on the wire the same way.
        let mut b = encode(&Packet::stats_request());
        b.extend_from_slice(b"xx");
        assert_eq!(parse(&b), Err(ParseError::TrailingGarbage { extra: 2 }));
        // The relayed form hits the same check past the relay header.
        let mut b = encode(&Packet::retrieval(DataId::new("key")).with_relay(1, 2, 3));
        b.push(0xFF);
        assert_eq!(parse(&b), Err(ParseError::TrailingGarbage { extra: 1 }));
    }

    #[test]
    fn appended_bytes_join_payload_for_payload_kinds() {
        // Placement/response payloads are length-delimited by the buffer
        // itself, so appended bytes extend the payload rather than erroring.
        for p in [
            Packet::placement(DataId::new("a"), b"x".as_ref()),
            Packet::response(DataId::new("c"), b"yz".as_ref()),
        ] {
            let mut b = encode(&p);
            b.push(b'!');
            let parsed = parse(&b).unwrap();
            assert_eq!(parsed.payload.len(), p.payload.len() + 1);
        }
    }

    #[test]
    fn batch_round_trip_preserves_order_and_contents() {
        let packets = vec![
            Packet::placement(DataId::new("a"), b"one".as_ref()),
            Packet::retrieval(DataId::new("b")),
            Packet::response(DataId::new("c"), b"three".as_ref()),
            Packet::retrieval(DataId::new("d")).with_relay(1, 2, 3),
        ];
        let mut buf = Vec::new();
        encode_batch_into(&packets, &mut buf);
        assert!(is_batch(&buf));
        let parsed = parse_batch_bytes(&Bytes::from(buf)).unwrap();
        assert_eq!(parsed, packets);
    }

    #[test]
    fn batch_sniff_rejects_single_packets_and_vice_versa() {
        let single = encode(&sample());
        assert!(!is_batch(&single));
        // A batch body fails the single-packet parser on magic, so a
        // mis-sniffed frame can never be half-parsed as the wrong form.
        let mut batch = Vec::new();
        encode_batch_into(std::slice::from_ref(&sample()), &mut batch);
        assert_eq!(parse(&batch), Err(ParseError::BadMagic));
        assert_eq!(
            parse_batch_bytes(&Bytes::from(single)),
            Err(ParseError::BadMagic)
        );
    }

    #[test]
    fn empty_batch_round_trips() {
        let mut buf = Vec::new();
        encode_batch_into(&[], &mut buf);
        assert_eq!(parse_batch_bytes(&Bytes::from(buf)).unwrap(), Vec::new());
    }

    #[test]
    fn batch_appends_after_existing_bytes() {
        // The cluster layer writes `[len][corr]` first; the container
        // must append, not clear.
        let mut buf = vec![0xAA, 0xBB];
        encode_batch_into(std::slice::from_ref(&sample()), &mut buf);
        assert_eq!(&buf[..2], &[0xAA, 0xBB]);
        let parsed = parse_batch_bytes(&Bytes::copy_from_slice(&buf[2..])).unwrap();
        assert_eq!(parsed, vec![sample()]);
    }

    #[test]
    fn batch_truncation_and_trailing_garbage_rejected() {
        let packets = vec![sample(), Packet::retrieval(DataId::new("k"))];
        let mut buf = Vec::new();
        encode_batch_into(&packets, &mut buf);
        for len in 0..buf.len() {
            assert!(
                parse_batch_bytes(&Bytes::copy_from_slice(&buf[..len])).is_err(),
                "prefix of {len} bytes must not parse"
            );
        }
        let mut extra = buf.clone();
        extra.push(0xFF);
        assert_eq!(
            parse_batch_bytes(&Bytes::from(extra)),
            Err(ParseError::TrailingGarbage { extra: 1 })
        );
        let mut bad_version = buf.clone();
        bad_version[2] = 9;
        assert_eq!(
            parse_batch_bytes(&Bytes::from(bad_version)),
            Err(ParseError::BadVersion(9))
        );
    }

    #[test]
    fn batch_payloads_share_the_body_allocation() {
        let packets = vec![Packet::response(DataId::new("k"), b"zero-copy".as_ref())];
        let mut buf = Vec::new();
        encode_batch_into(&packets, &mut buf);
        let body = Bytes::from(buf);
        let parsed = parse_batch_bytes(&body).unwrap();
        let offset = body.len() - packets[0].payload.len();
        assert_eq!(parsed[0].payload, body.slice(offset..));
    }

    #[test]
    fn error_display() {
        assert!(ParseError::BadMagic.to_string().contains("magic"));
        assert!(ParseError::Truncated { needed: 5, have: 2 }
            .to_string()
            .contains('5'));
        assert!(ParseError::TrailingGarbage { extra: 3 }
            .to_string()
            .contains('3'));
        assert!(ParseError::BadStatus { flags: 6, kind: 0 }
            .to_string()
            .contains("status"));
    }

    proptest! {
        /// Any packet survives an encode/parse round trip.
        #[test]
        fn prop_round_trip(
            id in proptest::collection::vec(any::<u8>(), 0..64),
            payload in proptest::collection::vec(any::<u8>(), 0..256),
            kind in 0u8..8,
            relay in proptest::option::of((0usize..1000, 0usize..1000, 0usize..1000)),
            status in 0u8..5,
            hops in any::<u16>(),
            detours in any::<u16>(),
        ) {
            let id = DataId::from_bytes(id);
            let mut p = match kind {
                0 => Packet::placement(id, payload.clone()),
                1 => Packet::retrieval(id),
                2 => Packet::response(id, payload.clone()),
                3 => Packet::invalidate(id),
                // Observability kinds with arbitrary ids: start from a
                // kind with the right payload shape and retag.
                4 => {
                    let mut p = Packet::retrieval(id); // payload-free
                    p.kind = PacketKind::Stats;
                    p
                }
                5 => {
                    let mut p = Packet::response(id, payload.clone());
                    p.kind = PacketKind::StatsResponse;
                    p
                }
                6 => {
                    let mut p = Packet::placement(id, payload.clone());
                    p.kind = PacketKind::Admin;
                    p
                }
                _ => {
                    let mut p = Packet::response(id, payload.clone());
                    p.kind = PacketKind::AdminResponse;
                    p
                }
            };
            if let Some((s, r, d)) = relay {
                p = p.with_relay(s, r, d);
            }
            // A status is only encodable on responses.
            if p.kind.is_response() {
                p.status = match status {
                    0 => ResponseStatus::Ok,
                    1 => ResponseStatus::NotFound,
                    2 => ResponseStatus::Error,
                    3 => ResponseStatus::Redirect,
                    _ => ResponseStatus::Degraded,
                };
            }
            p.hops = hops;
            p.detours = detours;
            let parsed = parse(&encode(&p)).unwrap();
            prop_assert_eq!(&parsed, &p);
            // The zero-copy parser agrees with the copying one exactly.
            let zero_copy = parse_bytes(&Bytes::from(encode(&p))).unwrap();
            prop_assert_eq!(zero_copy, parsed);
        }

        /// The parser never panics on arbitrary bytes, and the zero-copy
        /// variant returns the identical outcome.
        #[test]
        fn prop_parser_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
            let copying = parse(&bytes);
            let zero_copy = parse_bytes(&Bytes::copy_from_slice(&bytes));
            prop_assert_eq!(copying, zero_copy);
        }

        /// Garbage appended to a retrieval request is always rejected as
        /// `TrailingGarbage`, never absorbed and never a panic.
        #[test]
        fn prop_retrieval_trailing_garbage_rejected(
            id in proptest::collection::vec(any::<u8>(), 0..32),
            garbage in proptest::collection::vec(any::<u8>(), 1..64),
            relay in proptest::option::of((0usize..1000, 0usize..1000, 0usize..1000)),
        ) {
            let mut p = Packet::retrieval(DataId::from_bytes(id));
            if let Some((s, r, d)) = relay {
                p = p.with_relay(s, r, d);
            }
            let mut b = encode(&p);
            b.extend_from_slice(&garbage);
            prop_assert_eq!(
                parse(&b),
                Err(ParseError::TrailingGarbage { extra: garbage.len() })
            );
        }

        /// Invalidation notices are payload-free on the wire exactly
        /// like retrievals: appended garbage is always rejected.
        #[test]
        fn prop_invalidate_trailing_garbage_rejected(
            id in proptest::collection::vec(any::<u8>(), 0..32),
            garbage in proptest::collection::vec(any::<u8>(), 1..64),
        ) {
            let p = Packet::invalidate(DataId::from_bytes(id));
            let mut b = encode(&p);
            b.extend_from_slice(&garbage);
            prop_assert_eq!(
                parse(&b),
                Err(ParseError::TrailingGarbage { extra: garbage.len() })
            );
        }

        /// Any mix of packets survives a batch round trip in order, and
        /// the batch parser never panics on arbitrary bytes.
        #[test]
        fn prop_batch_round_trip(
            specs in proptest::collection::vec(
                (proptest::collection::vec(any::<u8>(), 0..16),
                 proptest::collection::vec(any::<u8>(), 0..64),
                 0u8..8),
                0..12,
            ),
            junk in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            let packets: Vec<Packet> = specs
                .into_iter()
                .map(|(id, payload, kind)| {
                    let id = DataId::from_bytes(id);
                    match kind {
                        0 => Packet::placement(id, payload),
                        1 => Packet::retrieval(id),
                        2 => Packet::response(id, payload),
                        3 => Packet::invalidate(id),
                        4 => {
                            let mut p = Packet::retrieval(id);
                            p.kind = PacketKind::Stats;
                            p
                        }
                        5 => {
                            let mut p = Packet::response(id, payload);
                            p.kind = PacketKind::StatsResponse;
                            p
                        }
                        6 => {
                            let mut p = Packet::placement(id, payload);
                            p.kind = PacketKind::Admin;
                            p
                        }
                        _ => {
                            let mut p = Packet::response(id, payload);
                            p.kind = PacketKind::AdminResponse;
                            p
                        }
                    }
                })
                .collect();
            let mut buf = Vec::new();
            encode_batch_into(&packets, &mut buf);
            prop_assert_eq!(parse_batch_bytes(&Bytes::from(buf)).unwrap(), packets);
            let _ = parse_batch_bytes(&Bytes::from(junk)); // total, never panics
        }
    }
}
