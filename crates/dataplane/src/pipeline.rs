//! The P4 match-action stage pipeline.
//!
//! The prototype "designs multiple match-action stages in series to
//! achieve the neighboring switch whose position is closest to the
//! position of the data. The P4 switch calculates the distance from a
//! neighbor to the data in the virtual space in a match-action stage."
//! This module models that execution style explicitly: a [`Pipeline`] is
//! a series of [`Stage`]s; each stage compares one neighbor entry's
//! distance against the running minimum carried in per-packet metadata,
//! exactly as a P4 program would thread a register through stages. The
//! final stage applies the greedy decision.
//!
//! [`SwitchDataplane::decide`](crate::SwitchDataplane::decide) computes
//! the same result directly; the pipeline exists to model (and count) the
//! hardware realization, and the two are cross-checked in tests.

use crate::entries::NeighborEntry;
use crate::switch::{ForwardDecision, SwitchDataplane};
use gred_geometry::Point2;
use gred_hash::DataId;

/// Per-packet metadata threaded between stages (P4 `metadata` struct).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacketMetadata {
    /// The data item's position (set by the parser).
    pub data_position: Point2,
    /// Squared distance of the best candidate so far.
    pub best_distance_sq: f64,
    /// Best candidate so far (`None` = the local switch).
    pub best: Option<BestCandidate>,
}

/// The running-minimum register contents.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BestCandidate {
    /// Neighbor switch id.
    pub neighbor: usize,
    /// Its position (needed for the paper's lexicographic tie-break).
    pub position: Point2,
    /// First hop toward it.
    pub via: usize,
    /// Physical (single-link) neighbor?
    pub physical: bool,
}

/// One match-action stage: compares a single neighbor entry against the
/// running minimum.
#[derive(Debug, Clone, Copy)]
pub struct Stage {
    entry: NeighborEntry,
}

impl Stage {
    /// A stage evaluating `entry`.
    pub fn new(entry: NeighborEntry) -> Self {
        Stage { entry }
    }

    /// Executes the stage: updates the metadata's running minimum if this
    /// stage's neighbor is strictly closer (ties broken by coordinate
    /// rank, as the paper prescribes for Voronoi-edge positions).
    pub fn execute(&self, meta: &mut PacketMetadata) {
        let d = self.entry.position.distance_squared(meta.data_position);
        let better = match meta.best {
            None => d < meta.best_distance_sq,
            Some(cur) => {
                d < meta.best_distance_sq
                    || (d == meta.best_distance_sq
                        && self.entry.position.lex_cmp(cur.position) == std::cmp::Ordering::Less)
            }
        };
        if better {
            meta.best_distance_sq = d;
            meta.best = Some(BestCandidate {
                neighbor: self.entry.neighbor,
                position: self.entry.position,
                via: self.entry.via,
                physical: self.entry.physical,
            });
        }
    }
}

/// A switch's full pipeline: parser → one stage per neighbor entry →
/// deparser/decision.
#[derive(Debug, Clone)]
pub struct Pipeline {
    switch: usize,
    position: Point2,
    server_count: usize,
    stages: Vec<Stage>,
}

impl Pipeline {
    /// Builds the pipeline currently programmed into `switch` (one stage
    /// per installed neighbor entry, in table order).
    ///
    /// # Panics
    ///
    /// Panics for transit switches, which run no greedy pipeline.
    pub fn compile(switch: &SwitchDataplane) -> Pipeline {
        assert!(
            switch.server_count() > 0,
            "transit switches have no greedy pipeline"
        );
        Pipeline {
            switch: switch.id(),
            position: switch.position(),
            server_count: switch.server_count(),
            stages: switch.neighbor_entries().map(|&e| Stage::new(e)).collect(),
        }
    }

    /// Number of match-action stages (neighbor comparisons).
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Runs the pipeline for a packet: parser sets the metadata, the
    /// stages fold the running minimum, the final block emits the greedy
    /// decision. The extension table is *not* consulted here — that
    /// rewrite happens in the egress table ([`SwitchDataplane::decide`]
    /// models both); the pipeline returns the raw greedy outcome.
    pub fn run(&self, data_position: Point2, id: &DataId) -> ForwardDecision {
        let mut meta = PacketMetadata {
            data_position,
            best_distance_sq: self.position.distance_squared(data_position),
            best: None,
        };
        for stage in &self.stages {
            stage.execute(&mut meta);
        }
        match meta.best {
            Some(best) => ForwardDecision::Forward {
                neighbor: best.neighbor,
                next_hop: best.via,
                virtual_link: !best.physical,
            },
            None => {
                let index = gred_hash::select_server(id, self.server_count);
                ForwardDecision::DeliverLocal {
                    server: gred_net::ServerId {
                        switch: self.switch,
                        index,
                    },
                    extended_to: None,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn entry(neighbor: usize, x: f64, y: f64) -> NeighborEntry {
        NeighborEntry {
            neighbor,
            position: Point2::new(x, y),
            via: neighbor,
            physical: true,
        }
    }

    fn switch_with(entries: &[NeighborEntry]) -> SwitchDataplane {
        let mut sw = SwitchDataplane::new(0, Point2::new(0.5, 0.5), 2);
        for &e in entries {
            sw.install_neighbor(e);
        }
        sw
    }

    #[test]
    fn empty_pipeline_delivers_locally() {
        let sw = switch_with(&[]);
        let p = Pipeline::compile(&sw);
        assert_eq!(p.stage_count(), 0);
        match p.run(Point2::new(0.9, 0.9), &DataId::new("k")) {
            ForwardDecision::DeliverLocal { server, .. } => assert_eq!(server.switch, 0),
            other => panic!("expected local delivery, got {other:?}"),
        }
    }

    #[test]
    fn stages_fold_the_minimum() {
        let sw = switch_with(&[entry(1, 0.1, 0.1), entry(2, 0.9, 0.9), entry(3, 0.7, 0.7)]);
        let p = Pipeline::compile(&sw);
        assert_eq!(p.stage_count(), 3);
        match p.run(Point2::new(0.95, 0.95), &DataId::new("k")) {
            ForwardDecision::Forward { neighbor, .. } => assert_eq!(neighbor, 2),
            other => panic!("expected forward, got {other:?}"),
        }
    }

    #[test]
    fn pipeline_agrees_with_decide() {
        // Randomized cross-check: the serial pipeline computes exactly the
        // same decision as the direct implementation (extension-free
        // switches).
        let mut rng = StdRng::seed_from_u64(5);
        for trial in 0..50 {
            let entries: Vec<NeighborEntry> = (0..rng.gen_range(0..8))
                .map(|i| entry(i + 1, rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)))
                .collect();
            let sw = switch_with(&entries);
            let p = Pipeline::compile(&sw);
            for probe in 0..20 {
                let pos = Point2::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0));
                let id = DataId::new(format!("x/{trial}/{probe}"));
                assert_eq!(
                    p.run(pos, &id),
                    sw.decide(pos, &id),
                    "trial {trial} probe {probe}"
                );
            }
        }
    }

    #[test]
    fn tie_break_matches_paper_rule() {
        // Switch far from the target so both equidistant neighbors beat it.
        let mut sw = SwitchDataplane::new(0, Point2::new(0.0, 0.0), 2);
        sw.install_neighbor(entry(1, 0.4, 0.6));
        sw.install_neighbor(entry(2, 0.6, 0.4));
        let p = Pipeline::compile(&sw);
        match p.run(Point2::new(0.5, 0.5), &DataId::new("k")) {
            ForwardDecision::Forward { neighbor, .. } => {
                assert_eq!(neighbor, 1, "(0.4, 0.6) is lexicographically smaller");
            }
            other => panic!("expected forward, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "transit")]
    fn transit_pipeline_panics() {
        let sw = SwitchDataplane::transit(3);
        let _ = Pipeline::compile(&sw);
    }
}
