//! The concrete forwarding-entry types GRED installs into switches.

use gred_geometry::Point2;
use gred_net::ServerId;
use serde::{Deserialize, Serialize};

/// A physical- or DT-neighbor entry: where the neighbor sits in the
/// virtual space and how to reach it.
///
/// For a physical neighbor, `via` is the neighbor itself (one link). For a
/// multi-hop DT neighbor, `via` is the first relay switch on the installed
/// virtual-link path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NeighborEntry {
    /// The neighbor switch this entry points at.
    pub neighbor: usize,
    /// The neighbor's coordinates in the virtual space.
    pub position: Point2,
    /// First-hop switch used to reach the neighbor.
    pub via: usize,
    /// Whether the neighbor is reachable over one physical link.
    pub physical: bool,
}

/// A virtual-link relay tuple `<sour, pred, succ, dest>` (paper
/// Section IV-C): one entry per virtual-link path through this switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DtTuple {
    /// Source switch of the virtual-link path.
    pub sour: usize,
    /// This switch's predecessor on the path.
    pub pred: usize,
    /// This switch's successor on the path.
    pub succ: usize,
    /// Destination switch of the path.
    pub dest: usize,
}

/// A range-extension rewrite entry (paper Tables I/II): traffic destined
/// to the overloaded server is readdressed to the takeover server and sent
/// out of the port toward its switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ExtensionEntry {
    /// The overloaded server whose range was extended.
    pub original: ServerId,
    /// The server that takes over the load.
    pub takeover: ServerId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dt_tuple_ordering_is_total() {
        let a = DtTuple {
            sour: 0,
            pred: 1,
            succ: 2,
            dest: 3,
        };
        let b = DtTuple {
            sour: 0,
            pred: 1,
            succ: 2,
            dest: 4,
        };
        assert!(a < b);
        assert_eq!(a, a);
    }

    #[test]
    fn extension_entry_equality() {
        let e = ExtensionEntry {
            original: ServerId {
                switch: 1,
                index: 0,
            },
            takeover: ServerId {
                switch: 2,
                index: 1,
            },
        };
        let same = e;
        assert_eq!(e, same);
        assert_ne!(
            e,
            ExtensionEntry {
                original: ServerId {
                    switch: 1,
                    index: 0
                },
                takeover: ServerId {
                    switch: 2,
                    index: 0
                },
            }
        );
    }

    #[test]
    fn neighbor_entry_physical_flag() {
        let phys = NeighborEntry {
            neighbor: 2,
            position: Point2::new(0.5, 0.5),
            via: 2,
            physical: true,
        };
        assert_eq!(
            phys.via, phys.neighbor,
            "physical neighbors are reached directly"
        );
        let multi = NeighborEntry {
            neighbor: 7,
            via: 3,
            physical: false,
            ..phys
        };
        assert_ne!(multi.via, multi.neighbor);
    }
}
