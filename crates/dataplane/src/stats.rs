//! Forwarding-table occupancy statistics (Fig. 9(d)) and hot-path
//! contention counters reported by node runtimes.

use crate::switch::SwitchDataplane;
use serde::{Deserialize, Serialize};

/// Hot-path health counters a node runtime (e.g. `gred-cluster`'s
/// per-switch daemon) accumulates while serving requests.
///
/// These exist so a concurrency regression shows up as a *metric*, not
/// just as a benchmark slope: a healthy multiplexed deployment keeps
/// `oneshot_fallbacks` and `link_reconnects` at zero, and
/// `store_shard_contention` near zero relative to `frames_decoded`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct NodeHotStats {
    /// Emergency one-shot TCP connections opened because a multiplexed
    /// peer link could not be used. Zero in a healthy cluster; every
    /// increment means a request paid a full TCP handshake.
    pub oneshot_fallbacks: u64,
    /// Multiplexed peer links torn down and re-established after an
    /// I/O failure.
    pub link_reconnects: u64,
    /// Times a store shard's lock was observed contended (a `try_lock`
    /// failed and the caller had to wait). A lock-wait *hint*, not a
    /// duration: it counts contended acquisitions, cheap enough to keep
    /// on in production.
    pub store_shard_contention: u64,
    /// Frames reassembled and parsed by this node (client connections,
    /// multiplexed peer servers, and demux readers combined).
    pub frames_decoded: u64,
    /// Packet encodes served from an already-warm reusable buffer (the
    /// per-connection/per-link scratch `Vec` had capacity from a prior
    /// send, so the encode allocated nothing).
    pub encode_buf_reuses: u64,
    /// Times a peer was marked suspect after its multiplexed link died
    /// and could not be re-established. Monotonic: a flapping peer
    /// increments once per suspicion episode.
    pub peers_suspected: u64,
    /// Forwarding decisions that detoured around a suspect DT neighbor
    /// (the true greedy next hop was skipped).
    pub detour_forwards: u64,
    /// Requests refused with `Redirect` because every viable next hop
    /// was suspect or the detour budget ran out.
    pub redirects_issued: u64,
    /// Remote-destined retrievals answered from the node's read cache
    /// (zero peer RPCs, zero dispatch-pool handoffs).
    pub cache_hits: u64,
    /// Remote-destined retrievals that probed the read cache and had to
    /// forward anyway. Hit rate = hits / (hits + misses).
    pub cache_misses: u64,
    /// Cached entries evicted by the CLOCK sweep to stay inside the
    /// byte budget.
    pub cache_evictions: u64,
    /// Invalidation frames received from peers (write-through coherence
    /// traffic; each one drops any cached copy of the written id).
    pub invalidations_rx: u64,
}

impl NodeHotStats {
    /// Element-wise sum, for aggregating per-node stats into a cluster
    /// total.
    pub fn merged(self, other: NodeHotStats) -> NodeHotStats {
        NodeHotStats {
            oneshot_fallbacks: self.oneshot_fallbacks + other.oneshot_fallbacks,
            link_reconnects: self.link_reconnects + other.link_reconnects,
            store_shard_contention: self.store_shard_contention + other.store_shard_contention,
            frames_decoded: self.frames_decoded + other.frames_decoded,
            encode_buf_reuses: self.encode_buf_reuses + other.encode_buf_reuses,
            peers_suspected: self.peers_suspected + other.peers_suspected,
            detour_forwards: self.detour_forwards + other.detour_forwards,
            redirects_issued: self.redirects_issued + other.redirects_issued,
            cache_hits: self.cache_hits + other.cache_hits,
            cache_misses: self.cache_misses + other.cache_misses,
            cache_evictions: self.cache_evictions + other.cache_evictions,
            invalidations_rx: self.invalidations_rx + other.invalidations_rx,
        }
    }
}

impl std::fmt::Display for NodeHotStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "oneshot_fallbacks={} link_reconnects={} store_shard_contention={} \
             frames_decoded={} encode_buf_reuses={} peers_suspected={} \
             detour_forwards={} redirects_issued={} cache_hits={} \
             cache_misses={} cache_evictions={} invalidations_rx={}",
            self.oneshot_fallbacks,
            self.link_reconnects,
            self.store_shard_contention,
            self.frames_decoded,
            self.encode_buf_reuses,
            self.peers_suspected,
            self.detour_forwards,
            self.redirects_issued,
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            self.invalidations_rx,
        )
    }
}

/// Aggregate table statistics over a set of switches.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TableStats {
    /// Number of switches sampled.
    pub switches: usize,
    /// Mean entries per switch.
    pub mean: f64,
    /// Minimum entries on any switch.
    pub min: usize,
    /// Median (lower-median nearest rank) entries per switch — with
    /// `min`/`max` this gives the per-switch distribution the scaling
    /// experiments report.
    pub p50: usize,
    /// Maximum entries on any switch.
    pub max: usize,
    /// Half-width of the 90% confidence interval of the mean (the paper's
    /// error bars), computed with the normal approximation.
    pub ci90_half_width: f64,
}

impl TableStats {
    /// Computes statistics over `switches`.
    ///
    /// Returns a zeroed struct when the slice is empty.
    pub fn collect<'a>(switches: impl IntoIterator<Item = &'a SwitchDataplane>) -> TableStats {
        let counts: Vec<usize> = switches
            .into_iter()
            .map(SwitchDataplane::entry_count)
            .collect();
        TableStats::from_counts(&counts)
    }

    /// Statistics from raw per-switch entry counts.
    pub fn from_counts(counts: &[usize]) -> TableStats {
        if counts.is_empty() {
            return TableStats {
                switches: 0,
                mean: 0.0,
                min: 0,
                p50: 0,
                max: 0,
                ci90_half_width: 0.0,
            };
        }
        let mut sorted = counts.to_vec();
        sorted.sort_unstable();
        let n = counts.len() as f64;
        let mean = counts.iter().sum::<usize>() as f64 / n;
        let var = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n.max(1.0);
        // z_{0.95} = 1.645 for a two-sided 90% interval.
        let ci90_half_width = if counts.len() > 1 {
            1.645 * (var / n).sqrt()
        } else {
            0.0
        };
        TableStats {
            switches: counts.len(),
            mean,
            min: sorted[0],
            p50: sorted[(sorted.len() - 1) / 2],
            max: *sorted.last().expect("nonempty"),
            ci90_half_width,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gred_geometry::Point2;

    #[test]
    fn hot_stats_merge_and_display() {
        let a = NodeHotStats {
            oneshot_fallbacks: 1,
            link_reconnects: 2,
            store_shard_contention: 3,
            frames_decoded: 4,
            encode_buf_reuses: 5,
            peers_suspected: 6,
            detour_forwards: 7,
            redirects_issued: 8,
            cache_hits: 9,
            cache_misses: 10,
            cache_evictions: 11,
            invalidations_rx: 12,
        };
        let b = NodeHotStats {
            frames_decoded: 10,
            cache_hits: 1,
            ..NodeHotStats::default()
        };
        let m = a.merged(b);
        assert_eq!(m.frames_decoded, 14);
        assert_eq!(m.oneshot_fallbacks, 1);
        let text = m.to_string();
        assert!(text.contains("oneshot_fallbacks=1"), "got {text}");
        assert!(text.contains("frames_decoded=14"), "got {text}");
        assert_eq!(m.peers_suspected, 6);
        assert!(text.contains("peers_suspected=6"), "got {text}");
        assert!(text.contains("redirects_issued=8"), "got {text}");
        assert_eq!(m.cache_hits, 10);
        assert!(text.contains("cache_hits=10"), "got {text}");
        assert!(text.contains("invalidations_rx=12"), "got {text}");
    }

    #[test]
    fn empty_stats() {
        let s = TableStats::from_counts(&[]);
        assert_eq!(s.switches, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn single_switch_has_no_ci() {
        let s = TableStats::from_counts(&[5]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.ci90_half_width, 0.0);
        assert_eq!((s.min, s.max), (5, 5));
    }

    #[test]
    fn from_counts_known_values() {
        let s = TableStats::from_counts(&[2, 4, 6]);
        assert!((s.mean - 4.0).abs() < 1e-12);
        assert_eq!(s.min, 2);
        assert_eq!(s.p50, 4);
        assert_eq!(s.max, 6);
        assert!(s.ci90_half_width > 0.0);
    }

    #[test]
    fn p50_is_order_independent_lower_median() {
        assert_eq!(TableStats::from_counts(&[9, 1, 5]).p50, 5);
        assert_eq!(TableStats::from_counts(&[8, 2, 4, 6]).p50, 4);
        assert_eq!(TableStats::from_counts(&[7]).p50, 7);
    }

    #[test]
    fn collect_from_switches() {
        use crate::entries::NeighborEntry;
        let mut a = SwitchDataplane::new(0, Point2::ORIGIN, 1);
        a.install_neighbor(NeighborEntry {
            neighbor: 1,
            position: Point2::new(0.5, 0.5),
            via: 1,
            physical: true,
        });
        let b = SwitchDataplane::new(1, Point2::new(0.5, 0.5), 1);
        let s = TableStats::collect([&a, &b]);
        assert_eq!(s.switches, 2);
        assert!((s.mean - 0.5).abs() < 1e-12);
    }
}
