//! Forwarding-table occupancy statistics (Fig. 9(d)).

use crate::switch::SwitchDataplane;
use serde::{Deserialize, Serialize};

/// Aggregate table statistics over a set of switches.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TableStats {
    /// Number of switches sampled.
    pub switches: usize,
    /// Mean entries per switch.
    pub mean: f64,
    /// Minimum entries on any switch.
    pub min: usize,
    /// Maximum entries on any switch.
    pub max: usize,
    /// Half-width of the 90% confidence interval of the mean (the paper's
    /// error bars), computed with the normal approximation.
    pub ci90_half_width: f64,
}

impl TableStats {
    /// Computes statistics over `switches`.
    ///
    /// Returns a zeroed struct when the slice is empty.
    pub fn collect<'a>(switches: impl IntoIterator<Item = &'a SwitchDataplane>) -> TableStats {
        let counts: Vec<usize> = switches
            .into_iter()
            .map(SwitchDataplane::entry_count)
            .collect();
        TableStats::from_counts(&counts)
    }

    /// Statistics from raw per-switch entry counts.
    pub fn from_counts(counts: &[usize]) -> TableStats {
        if counts.is_empty() {
            return TableStats {
                switches: 0,
                mean: 0.0,
                min: 0,
                max: 0,
                ci90_half_width: 0.0,
            };
        }
        let n = counts.len() as f64;
        let mean = counts.iter().sum::<usize>() as f64 / n;
        let var = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n.max(1.0);
        // z_{0.95} = 1.645 for a two-sided 90% interval.
        let ci90_half_width = if counts.len() > 1 {
            1.645 * (var / n).sqrt()
        } else {
            0.0
        };
        TableStats {
            switches: counts.len(),
            mean,
            min: *counts.iter().min().expect("nonempty"),
            max: *counts.iter().max().expect("nonempty"),
            ci90_half_width,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gred_geometry::Point2;

    #[test]
    fn empty_stats() {
        let s = TableStats::from_counts(&[]);
        assert_eq!(s.switches, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn single_switch_has_no_ci() {
        let s = TableStats::from_counts(&[5]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.ci90_half_width, 0.0);
        assert_eq!((s.min, s.max), (5, 5));
    }

    #[test]
    fn from_counts_known_values() {
        let s = TableStats::from_counts(&[2, 4, 6]);
        assert!((s.mean - 4.0).abs() < 1e-12);
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 6);
        assert!(s.ci90_half_width > 0.0);
    }

    #[test]
    fn collect_from_switches() {
        use crate::entries::NeighborEntry;
        let mut a = SwitchDataplane::new(0, Point2::ORIGIN, 1);
        a.install_neighbor(NeighborEntry {
            neighbor: 1,
            position: Point2::new(0.5, 0.5),
            via: 1,
            physical: true,
        });
        let b = SwitchDataplane::new(1, Point2::new(0.5, 0.5), 1);
        let s = TableStats::collect([&a, &b]);
        assert_eq!(s.switches, 2);
        assert!((s.mean - 0.5).abs() < 1e-12);
    }
}
