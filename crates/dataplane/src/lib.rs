#![warn(missing_docs)]

//! A P4-style programmable data plane, simulated.
//!
//! The paper implements GRED's switch logic in P4: a programmable parser
//! for the GRED packet headers, a series of match-action stages that find
//! the neighbor closest to a data item's virtual position, and exact-match
//! tables holding physical-neighbor ports, multi-hop DT relay tuples
//! `<sour, pred, succ, dest>`, and range-extension rewrites (paper
//! Tables I/II). We reproduce that machinery in software:
//!
//! - [`packet`]: GRED packet headers (placement/retrieval/response tags,
//!   data id and virtual position, virtual-link relay header, payload),
//! - [`table`]: a generic exact-match match-action table with entry
//!   accounting (forwarding-table size is one of the paper's metrics),
//! - [`relay`]: the prefix-compressed relay table — per-destination
//!   wildcard defaults plus exception entries, keeping installed counts
//!   sub-linear in the number of relayed paths,
//! - [`entries`]: the concrete entry types GRED installs,
//! - [`switch`]: the per-switch data plane — tables plus the greedy
//!   next-hop selection pipeline (Algorithm 2's data-plane half),
//! - [`stats`]: per-switch and network-wide table-occupancy statistics
//!   (Fig. 9(d)),
//! - [`obs`]: observability payloads — the stats snapshot a node serves
//!   over the wire and the admin verbs the control endpoint accepts.
//!
//! All figure-level behaviour (who wins, table growth, load placement)
//! depends on this forwarding logic, not on ASIC timing, so a faithful
//! software pipeline reproduces the paper's data-plane results.

pub mod entries;
pub mod obs;
pub mod packet;
pub mod pipeline;
pub mod relay;
pub mod stats;
pub mod switch;
pub mod table;
pub mod wire;

pub use entries::{DtTuple, ExtensionEntry, NeighborEntry};
pub use obs::{AdminOp, LinkStats, StatsSnapshot};
pub use packet::{Packet, PacketKind, RelayHeader, ResponseStatus};
pub use pipeline::Pipeline;
pub use relay::RelayTable;
pub use stats::{NodeHotStats, TableStats};
pub use switch::{ForwardDecision, SwitchDataplane};
pub use table::MatchActionTable;
pub use wire::{encode, encode_into, parse, parse_bytes, ParseError};
