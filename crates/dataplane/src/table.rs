//! A generic exact-match match-action table.
//!
//! P4 switches hold forwarding state in match-action tables: the packet's
//! header fields are matched against keys and the matching entry's action
//! data is applied. GRED's scalability argument (Fig. 9(d)) is about the
//! *number of entries* these tables need, so the table tracks its
//! occupancy and high-water mark.

use std::collections::BTreeMap;

/// An exact-match table mapping keys to action data.
///
/// ```
/// use gred_dataplane::MatchActionTable;
/// let mut t: MatchActionTable<u32, &str> = MatchActionTable::new("ipv4_lpm");
/// t.insert(10, "forward:p1");
/// assert_eq!(t.lookup(&10), Some(&"forward:p1"));
/// assert_eq!(t.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchActionTable<K, A> {
    name: &'static str,
    entries: BTreeMap<K, A>,
    high_water: usize,
}

impl<K: Ord, A> MatchActionTable<K, A> {
    /// An empty table labelled `name` (for stats output).
    pub fn new(name: &'static str) -> Self {
        MatchActionTable {
            name,
            entries: BTreeMap::new(),
            high_water: 0,
        }
    }

    /// The table's label.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Installs (or replaces) an entry, returning the previous action data
    /// if the key was already present.
    pub fn insert(&mut self, key: K, action: A) -> Option<A> {
        let prev = self.entries.insert(key, action);
        self.high_water = self.high_water.max(self.entries.len());
        prev
    }

    /// Removes an entry.
    pub fn remove(&mut self, key: &K) -> Option<A> {
        self.entries.remove(key)
    }

    /// Looks up the action data for `key`.
    pub fn lookup(&self, key: &K) -> Option<&A> {
        self.entries.get(key)
    }

    /// Whether `key` has an entry.
    pub fn contains(&self, key: &K) -> bool {
        self.entries.contains_key(key)
    }

    /// Current number of installed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The most entries the table has ever held.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Iterates over entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &A)> {
        self.entries.iter()
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_remove() {
        let mut t = MatchActionTable::new("t");
        assert!(t.is_empty());
        assert_eq!(t.insert(1, "a"), None);
        assert_eq!(t.insert(1, "b"), Some("a"));
        assert_eq!(t.lookup(&1), Some(&"b"));
        assert!(t.contains(&1));
        assert_eq!(t.remove(&1), Some("b"));
        assert_eq!(t.remove(&1), None);
        assert!(t.is_empty());
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut t = MatchActionTable::new("t");
        t.insert(1, ());
        t.insert(2, ());
        t.insert(3, ());
        t.remove(&1);
        t.remove(&2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.high_water(), 3);
    }

    #[test]
    fn iter_is_key_ordered() {
        let mut t = MatchActionTable::new("t");
        t.insert(3, "c");
        t.insert(1, "a");
        t.insert(2, "b");
        let keys: Vec<i32> = t.iter().map(|(&k, _)| k).collect();
        assert_eq!(keys, vec![1, 2, 3]);
    }

    #[test]
    fn clear_resets_entries_not_high_water() {
        let mut t = MatchActionTable::new("t");
        t.insert(1, ());
        t.insert(2, ());
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.high_water(), 2);
        assert_eq!(t.name(), "t");
    }
}
