//! A prefix-compressed relay table.
//!
//! The relay table logically holds one `<sour, pred, succ, dest>` tuple
//! per virtual-link path through this switch, matched by `(dest, sour)`.
//! In practice most paths toward the same destination leave through the
//! same successor port — the network funnels them — so installing one
//! exact-match entry per path wastes hardware table space. This table
//! keeps the logical tuples but *installs* them in longest-prefix-match
//! style, per destination:
//!
//! - one wildcard rule `(dest, *) → default succ`, where the default is
//!   the tuple with the smallest source (exactly the entry the paper's
//!   dest-only fallback would have matched), and
//! - one exact-match rule `(dest, sour) → succ` per **exception**, a
//!   tuple whose successor differs from the default.
//!
//! Tuples that agree with the default ("covered") cost no installed
//! entry: the wildcard already forwards them correctly. The installed
//! footprint per destination is `1 + exceptions`, which is what a
//! hardware table would hold and what [`RelayTable::installed_len`]
//! reports — the paper's Fig. 9(d) metric. Lookup semantics are
//! bit-identical to the uncompressed table: an exact `(dest, sour)`
//! match wins, anything else with a matching `dest` falls back to the
//! smallest-source tuple's successor.
//!
//! The representation is **canonical**: it is a pure function of the
//! logical tuple set, independent of install order, so two controllers
//! that install the same paths in different orders (full rebuild vs
//! delta rebuild, any thread count) produce bit-identical tables.

use crate::entries::DtTuple;
use std::collections::BTreeMap;

/// All relay state for one destination: the wildcard default plus the
/// covered/exception split of the remaining tuples.
#[derive(Debug, Clone, PartialEq, Eq)]
struct DestRelays {
    /// The smallest-source tuple — the installed wildcard `(dest, *)`.
    default: DtTuple,
    /// Tuples whose successor equals the default's: represented by the
    /// wildcard, no installed entry of their own. Keyed by source.
    covered: BTreeMap<usize, DtTuple>,
    /// Tuples whose successor differs: one installed exact-match entry
    /// each. Keyed by source.
    exceptions: BTreeMap<usize, DtTuple>,
}

impl DestRelays {
    /// Installed (hardware) entries for this destination: the wildcard
    /// plus one per exception.
    fn installed(&self) -> usize {
        1 + self.exceptions.len()
    }

    /// Rebuilds the canonical split from an iterator of tuples (all with
    /// the same dest, distinct sours). Returns `None` when empty.
    fn canonicalize(tuples: impl IntoIterator<Item = DtTuple>) -> Option<DestRelays> {
        let mut by_sour: BTreeMap<usize, DtTuple> = BTreeMap::new();
        for t in tuples {
            by_sour.insert(t.sour, t);
        }
        let (_, default) = by_sour.pop_first()?;
        let mut covered = BTreeMap::new();
        let mut exceptions = BTreeMap::new();
        for (sour, t) in by_sour {
            if t.succ == default.succ {
                covered.insert(sour, t);
            } else {
                exceptions.insert(sour, t);
            }
        }
        Some(DestRelays {
            default,
            covered,
            exceptions,
        })
    }

    /// All tuples for this destination in ascending source order.
    fn tuples(&self) -> impl Iterator<Item = &DtTuple> {
        // The three parts hold disjoint sources and each BTreeMap
        // iterates in ascending order; a three-way merge preserves the
        // global ascending-source order without collecting.
        MergeBySour {
            default: Some(&self.default),
            covered: self.covered.values().peekable(),
            exceptions: self.exceptions.values().peekable(),
        }
    }

    fn get(&self, sour: usize) -> Option<&DtTuple> {
        if self.default.sour == sour {
            return Some(&self.default);
        }
        self.covered
            .get(&sour)
            .or_else(|| self.exceptions.get(&sour))
    }
}

/// Ascending-source merge over a destination's default/covered/exception
/// tuples.
struct MergeBySour<'a, C, E>
where
    C: Iterator<Item = &'a DtTuple>,
    E: Iterator<Item = &'a DtTuple>,
{
    default: Option<&'a DtTuple>,
    covered: std::iter::Peekable<C>,
    exceptions: std::iter::Peekable<E>,
}

impl<'a, C, E> Iterator for MergeBySour<'a, C, E>
where
    C: Iterator<Item = &'a DtTuple>,
    E: Iterator<Item = &'a DtTuple>,
{
    type Item = &'a DtTuple;

    fn next(&mut self) -> Option<&'a DtTuple> {
        let mut best: Option<(usize, u8)> = None;
        if let Some(t) = self.default {
            best = Some((t.sour, 0));
        }
        if let Some(t) = self.covered.peek() {
            if best.is_none_or(|(s, _)| t.sour < s) {
                best = Some((t.sour, 1));
            }
        }
        if let Some(t) = self.exceptions.peek() {
            if best.is_none_or(|(s, _)| t.sour < s) {
                best = Some((t.sour, 2));
            }
        }
        match best? {
            (_, 0) => self.default.take(),
            (_, 1) => self.covered.next(),
            _ => self.exceptions.next(),
        }
    }
}

/// The compressed relay table: per-destination wildcard defaults plus
/// exception entries, canonical in the logical tuple set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelayTable {
    dests: BTreeMap<usize, DestRelays>,
    logical: usize,
    high_water: usize,
}

impl Default for RelayTable {
    fn default() -> Self {
        RelayTable::new()
    }
}

impl RelayTable {
    /// An empty table.
    pub fn new() -> Self {
        RelayTable {
            dests: BTreeMap::new(),
            logical: 0,
            high_water: 0,
        }
    }

    /// Installs (or replaces) the tuple for `(tuple.dest, tuple.sour)`,
    /// returning the previous tuple at that key.
    pub fn insert(&mut self, tuple: DtTuple) -> Option<DtTuple> {
        let bucket = self.dests.remove(&tuple.dest);
        let mut previous = None;
        let rebuilt = match bucket {
            None => DestRelays::canonicalize([tuple]),
            Some(b) => {
                let mut all: Vec<DtTuple> = b.tuples().copied().collect();
                if let Some(slot) = all.iter_mut().find(|t| t.sour == tuple.sour) {
                    previous = Some(*slot);
                    *slot = tuple;
                } else {
                    all.push(tuple);
                }
                DestRelays::canonicalize(all)
            }
        };
        let bucket = rebuilt.expect("insert always leaves at least one tuple");
        self.dests.insert(tuple.dest, bucket);
        if previous.is_none() {
            self.logical += 1;
        }
        self.high_water = self.high_water.max(self.installed_len());
        previous
    }

    /// Removes the tuple for `(dest, sour)`, if present. When the removed
    /// tuple was the wildcard default, the next-smallest source is
    /// promoted and the covered/exception split is recomputed, keeping
    /// the representation canonical.
    pub fn remove(&mut self, dest: usize, sour: usize) -> Option<DtTuple> {
        let bucket = self.dests.remove(&dest)?;
        if bucket.get(sour).is_none() {
            self.dests.insert(dest, bucket);
            return None;
        }
        let mut removed = None;
        let remaining: Vec<DtTuple> = bucket
            .tuples()
            .copied()
            .filter(|t| {
                if t.sour == sour {
                    removed = Some(*t);
                    false
                } else {
                    true
                }
            })
            .collect();
        if let Some(rebuilt) = DestRelays::canonicalize(remaining) {
            self.dests.insert(dest, rebuilt);
        }
        self.logical -= 1;
        removed
    }

    /// The tuple installed for exactly `(dest, sour)`, if any.
    pub fn lookup(&self, dest: usize, sour: usize) -> Option<&DtTuple> {
        self.dests.get(&dest)?.get(sour)
    }

    /// The successor for a relayed packet addressed to `(dest, sour)`:
    /// the exact tuple's successor when installed, otherwise the
    /// destination's wildcard default (the smallest-source tuple, exactly
    /// the paper's dest-only fallback). `None` when no tuple matches the
    /// destination at all.
    pub fn next_hop(&self, dest: usize, sour: usize) -> Option<usize> {
        let bucket = self.dests.get(&dest)?;
        Some(match bucket.exceptions.get(&sour) {
            Some(t) => t.succ,
            None => bucket.default.succ,
        })
    }

    /// Iterates over the logical tuples in `(dest, sour)` order.
    pub fn iter(&self) -> impl Iterator<Item = &DtTuple> {
        self.dests.values().flat_map(DestRelays::tuples)
    }

    /// Number of logical tuples (virtual-link paths through this switch).
    pub fn len(&self) -> usize {
        self.logical
    }

    /// Whether the table holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.logical == 0
    }

    /// Installed (hardware) entries: one wildcard per destination plus
    /// one exact-match entry per exception. This is the per-switch
    /// footprint a real match-action table would hold and the statistic
    /// exported for the paper's entry-count metric.
    pub fn installed_len(&self) -> usize {
        self.dests.values().map(DestRelays::installed).sum()
    }

    /// Highest installed-entry count ever reached.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Removes every tuple.
    pub fn clear(&mut self) {
        self.dests.clear();
        self.logical = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(sour: usize, pred: usize, succ: usize, dest: usize) -> DtTuple {
        DtTuple {
            sour,
            pred,
            succ,
            dest,
        }
    }

    /// The uncompressed reference: a BTreeMap keyed by `(dest, sour)`
    /// with the original linear-scan fallback.
    #[derive(Default)]
    struct Reference(BTreeMap<(usize, usize), DtTuple>);

    impl Reference {
        fn next_hop(&self, dest: usize, sour: usize) -> Option<usize> {
            if let Some(t) = self.0.get(&(dest, sour)) {
                return Some(t.succ);
            }
            self.0
                .iter()
                .find(|((d, _), _)| *d == dest)
                .map(|(_, t)| t.succ)
        }
    }

    #[test]
    fn lookup_and_fallback_match_reference() {
        let tuples = [t(1, 0, 7, 9), t(4, 2, 7, 9), t(6, 3, 8, 9), t(2, 1, 5, 3)];
        let mut table = RelayTable::new();
        let mut reference = Reference::default();
        for tu in tuples {
            table.insert(tu);
            reference.0.insert((tu.dest, tu.sour), tu);
        }
        for dest in 0..12 {
            for sour in 0..12 {
                assert_eq!(
                    table.next_hop(dest, sour),
                    reference.next_hop(dest, sour),
                    "dest={dest} sour={sour}"
                );
            }
        }
    }

    #[test]
    fn canonical_across_insert_orders() {
        let tuples = [t(3, 0, 7, 9), t(1, 0, 7, 9), t(6, 3, 8, 9), t(5, 2, 8, 9)];
        let mut forward = RelayTable::new();
        for tu in tuples {
            forward.insert(tu);
        }
        let mut backward = RelayTable::new();
        for tu in tuples.iter().rev() {
            backward.insert(*tu);
        }
        assert_eq!(forward, backward);
        // 1 wildcard (sour 1 → 7), sour 3 covered, sours 5/6 exceptions.
        assert_eq!(forward.installed_len(), 3);
        assert_eq!(forward.len(), 4);
    }

    #[test]
    fn iteration_is_dest_then_sour_ordered() {
        let tuples = [t(5, 0, 1, 9), t(2, 0, 1, 9), t(9, 0, 2, 9), t(1, 0, 1, 4)];
        let mut table = RelayTable::new();
        for tu in tuples {
            table.insert(tu);
        }
        let keys: Vec<(usize, usize)> = table.iter().map(|t| (t.dest, t.sour)).collect();
        assert_eq!(keys, vec![(4, 1), (9, 2), (9, 5), (9, 9)]);
    }

    #[test]
    fn removing_default_promotes_next_source() {
        let mut table = RelayTable::new();
        table.insert(t(1, 0, 7, 9));
        table.insert(t(4, 2, 8, 9)); // exception while 1 is default
        table.insert(t(6, 3, 8, 9)); // exception while 1 is default
        assert_eq!(table.installed_len(), 3);

        // Remove the default: sour 4 is promoted, and sour 6 (same succ)
        // becomes covered — the installed footprint shrinks to 1.
        assert_eq!(table.remove(9, 1).map(|t| t.succ), Some(7));
        assert_eq!(table.installed_len(), 1);
        assert_eq!(table.len(), 2);
        assert_eq!(table.next_hop(9, 4), Some(8));
        assert_eq!(table.next_hop(9, 6), Some(8));
        // Unknown source falls back to the new default.
        assert_eq!(table.next_hop(9, 1), Some(8));

        assert_eq!(table.remove(9, 4).map(|t| t.sour), Some(4));
        assert_eq!(table.remove(9, 6).map(|t| t.sour), Some(6));
        assert_eq!(table.next_hop(9, 6), None);
        assert!(table.is_empty());
        assert_eq!(table.remove(9, 6), None);
    }

    #[test]
    fn replacing_a_tuple_updates_split() {
        let mut table = RelayTable::new();
        table.insert(t(1, 0, 7, 9));
        table.insert(t(4, 2, 7, 9)); // covered
        assert_eq!(table.installed_len(), 1);
        // Re-route sour 4 through a different successor: becomes an
        // exception, replacing (not duplicating) the logical tuple.
        let prev = table.insert(t(4, 2, 8, 9));
        assert_eq!(prev.map(|t| t.succ), Some(7));
        assert_eq!(table.len(), 2);
        assert_eq!(table.installed_len(), 2);
        assert_eq!(table.next_hop(9, 4), Some(8));
        // Re-route the default itself: every split is recomputed.
        table.insert(t(1, 0, 8, 9));
        assert_eq!(table.installed_len(), 1, "sour 4 is covered again");
    }

    #[test]
    fn clear_and_high_water() {
        let mut table = RelayTable::new();
        table.insert(t(1, 0, 7, 9));
        table.insert(t(2, 0, 8, 9));
        assert_eq!(table.high_water(), 2);
        table.clear();
        assert!(table.is_empty());
        assert_eq!(table.installed_len(), 0);
        assert_eq!(table.high_water(), 2, "high water survives clear");
        assert_eq!(table.next_hop(9, 1), None);
    }

    #[test]
    fn funneled_paths_compress_to_one_entry() {
        // 50 paths to the same destination all leaving through port 3:
        // the hardware footprint is a single wildcard entry.
        let mut table = RelayTable::new();
        for sour in 0..50 {
            table.insert(t(sour, sour, 3, 99));
        }
        assert_eq!(table.len(), 50);
        assert_eq!(table.installed_len(), 1);
        for sour in 0..60 {
            assert_eq!(table.next_hop(99, sour), Some(3));
        }
    }

    #[test]
    fn exhaustive_semantics_against_reference() {
        // Drive both tables through a deterministic install/remove
        // schedule and compare every lookup after every step.
        let mut table = RelayTable::new();
        let mut reference = Reference::default();
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for step in 0..400 {
            let dest = next() % 6;
            let sour = next() % 6;
            if next() % 4 == 0 {
                assert_eq!(
                    table.remove(dest, sour),
                    reference.0.remove(&(dest, sour)),
                    "step {step}: remove({dest},{sour})"
                );
            } else {
                let tu = t(sour, next() % 6, next() % 6, dest);
                assert_eq!(
                    table.insert(tu),
                    reference.0.insert((dest, sour), tu),
                    "step {step}: insert {tu:?}"
                );
            }
            assert_eq!(table.len(), reference.0.len());
            for d in 0..6 {
                for s in 0..6 {
                    assert_eq!(
                        table.next_hop(d, s),
                        reference.next_hop(d, s),
                        "step {step}: next_hop({d},{s})"
                    );
                    assert_eq!(
                        table.lookup(d, s),
                        reference.0.get(&(d, s)),
                        "step {step}: lookup({d},{s})"
                    );
                }
            }
            let logical: Vec<DtTuple> = table.iter().copied().collect();
            let expect: Vec<DtTuple> = reference.0.values().copied().collect();
            assert_eq!(logical, expect, "step {step}: iteration order");
            assert!(table.installed_len() <= table.len().max(1));
        }
    }
}
