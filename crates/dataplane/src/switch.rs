//! The per-switch GRED data plane.
//!
//! Each switch holds three match-action tables and a greedy decision
//! pipeline (the data-plane half of the paper's Algorithm 2):
//!
//! 1. **Neighbor table** — one entry per physical neighbor and per
//!    multi-hop DT neighbor, carrying the neighbor's virtual-space
//!    coordinates and the first-hop switch used to reach it. The P4
//!    prototype evaluates one match-action stage per neighbor to find the
//!    one closest to the packet's data position; `decide` performs the
//!    same computation.
//! 2. **Relay table** — virtual-link tuples `<sour, pred, succ, dest>`,
//!    matched by `(dest, sour)` when the switch is an intermediate relay.
//!    Stored compressed ([`RelayTable`]): one wildcard rule per
//!    destination plus exact-match exceptions, so the installed
//!    footprint stays sub-linear in the number of paths funneled through
//!    the switch while lookups behave exactly like the uncompressed
//!    table.
//! 3. **Extension table** — range-extension rewrites (paper Tables I/II)
//!    consulted when the switch delivers locally.

use crate::entries::{DtTuple, ExtensionEntry, NeighborEntry};
use crate::relay::RelayTable;
use crate::table::MatchActionTable;
use gred_geometry::Point2;
use gred_hash::DataId;
use gred_net::ServerId;
use std::sync::atomic::{AtomicU64, Ordering};

/// The outcome of the greedy pipeline for one packet at one switch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ForwardDecision {
    /// Forward toward DT/physical neighbor `neighbor`, sending the packet
    /// to `next_hop` first (equal to `neighbor` for physical neighbors;
    /// the first relay of a virtual link otherwise).
    Forward {
        /// The DT/physical neighbor chosen by the greedy comparison.
        neighbor: usize,
        /// First-hop switch toward that neighbor.
        next_hop: usize,
        /// Whether the forwarding enters a multi-hop virtual link.
        virtual_link: bool,
    },
    /// This switch is closest to the data position: deliver to the local
    /// server selected by `H(d) mod s`, plus the takeover server when a
    /// range extension is installed for it.
    DeliverLocal {
        /// The server `H(d) mod s` selects.
        server: ServerId,
        /// Takeover server, when `server`'s range was extended.
        extended_to: Option<ServerId>,
    },
}

/// One switch's data plane: position, tables, and the greedy pipeline.
///
/// ```
/// use gred_dataplane::{NeighborEntry, SwitchDataplane, ForwardDecision};
/// use gred_geometry::Point2;
/// use gred_hash::DataId;
///
/// let mut sw = SwitchDataplane::new(0, Point2::new(0.1, 0.1), 2);
/// sw.install_neighbor(NeighborEntry {
///     neighbor: 1,
///     position: Point2::new(0.9, 0.9),
///     via: 1,
///     physical: true,
/// });
/// // A data item hashing near (0.9, 0.9) is forwarded to switch 1.
/// match sw.decide(Point2::new(0.85, 0.95), &DataId::new("k")) {
///     ForwardDecision::Forward { neighbor, .. } => assert_eq!(neighbor, 1),
///     other => panic!("expected forward, got {other:?}"),
/// }
/// ```
#[derive(Debug)]
pub struct SwitchDataplane {
    id: usize,
    position: Point2,
    server_count: usize,
    neighbors: MatchActionTable<usize, NeighborEntry>,
    relays: RelayTable,
    extensions: MatchActionTable<ServerId, ExtensionEntry>,
    /// P4-style counter: packets this switch processed (greedy decisions
    /// plus virtual-link relays).
    processed: AtomicU64,
}

impl Clone for SwitchDataplane {
    fn clone(&self) -> Self {
        SwitchDataplane {
            id: self.id,
            position: self.position,
            server_count: self.server_count,
            neighbors: self.neighbors.clone(),
            relays: self.relays.clone(),
            extensions: self.extensions.clone(),
            processed: AtomicU64::new(self.processed.load(Ordering::Relaxed)),
        }
    }
}

impl SwitchDataplane {
    /// A switch `id` at virtual position `position` with `server_count`
    /// directly attached edge servers.
    ///
    /// # Panics
    ///
    /// Panics if `server_count == 0`; a GRED placement switch always has
    /// at least one server (pure transit switches do not join the DT and
    /// never call `decide`, but still need a well-formed data plane — pass
    /// their real attached count or use [`SwitchDataplane::transit`]).
    pub fn new(id: usize, position: Point2, server_count: usize) -> Self {
        assert!(
            server_count > 0,
            "placement switch needs at least one server"
        );
        SwitchDataplane {
            id,
            position,
            server_count,
            neighbors: MatchActionTable::new("gred_neighbors"),
            relays: RelayTable::new(),
            extensions: MatchActionTable::new("gred_extensions"),
            processed: AtomicU64::new(0),
        }
    }

    /// A transit-only switch: participates in relaying but owns no servers
    /// and no DT position of its own ("switches that are not directly
    /// connected to some edge servers will not participate in the
    /// construction of the DT", Section IV-C).
    pub fn transit(id: usize) -> Self {
        SwitchDataplane {
            id,
            position: Point2::ORIGIN,
            server_count: 0,
            neighbors: MatchActionTable::new("gred_neighbors"),
            relays: RelayTable::new(),
            extensions: MatchActionTable::new("gred_extensions"),
            processed: AtomicU64::new(0),
        }
    }

    /// The switch id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The switch's virtual-space position.
    pub fn position(&self) -> Point2 {
        self.position
    }

    /// Updates the virtual-space position (re-embedding / refinement).
    pub fn set_position(&mut self, position: Point2) {
        self.position = position;
    }

    /// Number of directly attached servers.
    pub fn server_count(&self) -> usize {
        self.server_count
    }

    /// Installs (or replaces) a neighbor entry.
    pub fn install_neighbor(&mut self, entry: NeighborEntry) {
        self.neighbors.insert(entry.neighbor, entry);
    }

    /// Removes the entry for `neighbor`, if any.
    pub fn remove_neighbor(&mut self, neighbor: usize) -> Option<NeighborEntry> {
        self.neighbors.remove(&neighbor)
    }

    /// Removes every neighbor entry (controller-side maintenance before a
    /// member's entries are reinstalled).
    pub fn clear_neighbors(&mut self) {
        self.neighbors.clear();
    }

    /// Iterates over installed neighbor entries.
    pub fn neighbor_entries(&self) -> impl Iterator<Item = &NeighborEntry> {
        self.neighbors.iter().map(|(_, e)| e)
    }

    /// Installs a virtual-link relay tuple (keyed by `(dest, sour)`).
    pub fn install_relay(&mut self, tuple: DtTuple) {
        self.relays.insert(tuple);
    }

    /// Removes the relay tuple for the `(dest, sour)` path.
    pub fn remove_relay(&mut self, dest: usize, sour: usize) -> Option<DtTuple> {
        self.relays.remove(dest, sour)
    }

    /// Clears every relay tuple (used when the controller reinstalls paths
    /// after a topology change).
    pub fn clear_relays(&mut self) {
        self.relays.clear();
    }

    /// Iterates over the logical relay tuples in `(dest, sour)` key
    /// order — one per virtual-link path through this switch, regardless
    /// of how the compressed table represents them.
    pub fn relay_entries(&self) -> impl Iterator<Item = &DtTuple> {
        self.relays.iter()
    }

    /// The successor to forward to when relaying a virtual-link packet
    /// addressed to `(dest, sour)` — the paper's "find tuple t with
    /// t.dest = d.dest, set d.relay = t.succ". Falls back to matching on
    /// `dest` alone (as the paper describes) when the exact path entry is
    /// missing.
    pub fn relay_next(&self, dest: usize, sour: usize) -> Option<usize> {
        self.processed.fetch_add(1, Ordering::Relaxed);
        self.relays.next_hop(dest, sour)
    }

    /// Counter-free *exact* relay lookup: the logical tuple installed for
    /// `(dest, sour)`, with no dest-only fallback and no packet counted.
    /// Controller-side maintenance (chain walking during delta rebuilds)
    /// uses this; the data path uses [`SwitchDataplane::relay_next`].
    pub fn relay_lookup(&self, dest: usize, sour: usize) -> Option<&DtTuple> {
        self.relays.lookup(dest, sour)
    }

    /// Installs a range-extension rewrite for `entry.original` (which must
    /// be a server of this switch).
    ///
    /// # Panics
    ///
    /// Panics if `entry.original.switch != self.id()`.
    pub fn install_extension(&mut self, entry: ExtensionEntry) {
        assert_eq!(
            entry.original.switch, self.id,
            "extension rewrites are installed at the overloaded server's switch"
        );
        self.extensions.insert(entry.original, entry);
    }

    /// Removes the extension rewrite for `original` (load drained back).
    pub fn remove_extension(&mut self, original: ServerId) -> Option<ExtensionEntry> {
        self.extensions.remove(&original)
    }

    /// The takeover server for `original`, if its range is extended.
    pub fn extension_of(&self, original: ServerId) -> Option<ServerId> {
        self.extensions.lookup(&original).map(|e| e.takeover)
    }

    /// Packets this switch has processed (greedy decisions + relays) —
    /// a P4-style counter for forwarding-load experiments.
    pub fn packets_processed(&self) -> u64 {
        self.processed.load(Ordering::Relaxed)
    }

    /// Resets the packet counter.
    pub fn reset_counters(&self) {
        self.processed.store(0, Ordering::Relaxed);
    }

    /// Total *installed* forwarding entries across all tables — the
    /// metric of Fig. 9(d). Relay entries are counted in their
    /// compressed, hardware form (one wildcard per destination plus
    /// exceptions), not one per logical path; see
    /// [`SwitchDataplane::relay_path_count`] for the logical count.
    pub fn entry_count(&self) -> usize {
        self.neighbors.len() + self.relays.installed_len() + self.extensions.len()
    }

    /// Per-table installed entry counts `(neighbors, relays, extensions)`.
    pub fn entry_breakdown(&self) -> (usize, usize, usize) {
        (
            self.neighbors.len(),
            self.relays.installed_len(),
            self.extensions.len(),
        )
    }

    /// Number of logical virtual-link paths relayed through this switch
    /// (what the uncompressed table's entry count used to be).
    pub fn relay_path_count(&self) -> usize {
        self.relays.len()
    }

    /// Counter-free peek at the greedy outcome: whether this switch is
    /// the local minimum for `data_position` (no neighbor strictly
    /// closer), i.e. whether [`decide`](Self::decide) would deliver
    /// locally. Does not count as a processed packet — node runtimes use
    /// it to classify a request before running the real pipeline.
    pub fn is_local_minimum(&self, data_position: Point2) -> bool {
        let own = self.position.distance_squared(data_position);
        self.neighbors
            .iter()
            .all(|(_, e)| e.position.distance_squared(data_position) >= own)
    }

    /// The greedy pipeline (Algorithm 2): compare every neighbor's
    /// distance to the data position against this switch's own; forward to
    /// the strictly closer minimum, or deliver locally when none is closer.
    ///
    /// Distance ties between neighbors break by lexicographic coordinate
    /// rank, the paper's Voronoi-edge tie-break.
    ///
    /// # Panics
    ///
    /// Panics if called on a transit switch (no servers): transit switches
    /// only relay; the controller never makes them DT members.
    pub fn decide(&self, data_position: Point2, id: &DataId) -> ForwardDecision {
        self.decide_avoiding(data_position, id, &|_| true).0
    }

    /// The greedy pipeline with a liveness filter: neighbors for which
    /// `alive` returns `false` are treated as absent, so the walk falls
    /// back to the next-best neighbor (or local delivery) instead of
    /// forwarding into a suspect peer.
    ///
    /// Returns the decision and whether it *detoured* — i.e. whether the
    /// unfiltered pipeline would have chosen differently. Filtering can
    /// only remove forwarding candidates, so every filtered step still
    /// strictly decreases the `(distance², lex)` measure toward the data
    /// position: the walk cannot cycle, whatever each node's local view
    /// of liveness is. A detoured delivery may land off the true greedy
    /// owner, which callers surface as a `Degraded` response.
    ///
    /// # Panics
    ///
    /// Panics if called on a transit switch (no servers), exactly like
    /// [`decide`](Self::decide).
    pub fn decide_avoiding(
        &self,
        data_position: Point2,
        id: &DataId,
        alive: &dyn Fn(usize) -> bool,
    ) -> (ForwardDecision, bool) {
        assert!(
            self.server_count > 0,
            "transit switch {} cannot run the greedy placement pipeline",
            self.id
        );
        self.processed.fetch_add(1, Ordering::Relaxed);
        let own = self.position.distance_squared(data_position);
        // Track the best live candidate (the decision) and the best
        // unfiltered candidate (to detect detours) in one pass.
        let mut best: Option<&NeighborEntry> = None;
        let mut best_d = own;
        let mut best_all: Option<&NeighborEntry> = None;
        let mut best_all_d = own;
        for (_, entry) in self.neighbors.iter() {
            let d = entry.position.distance_squared(data_position);
            let better = |cur: Option<&NeighborEntry>, cur_d: f64| match cur {
                _ if d < cur_d => true,
                Some(c) if d == cur_d => {
                    entry.position.lex_cmp(c.position) == std::cmp::Ordering::Less
                }
                _ => false,
            };
            if better(best_all, best_all_d) {
                best_all = Some(entry);
                best_all_d = d;
            }
            if alive(entry.neighbor) && better(best, best_d) {
                best = Some(entry);
                best_d = d;
            }
        }
        let chosen = match best {
            Some(entry) if best_d < own => Some(entry.neighbor),
            _ => None,
        };
        let unfiltered = match best_all {
            Some(entry) if best_all_d < own => Some(entry.neighbor),
            _ => None,
        };
        let detoured = chosen != unfiltered;
        let decision = match best {
            Some(entry) if best_d < own => ForwardDecision::Forward {
                neighbor: entry.neighbor,
                next_hop: entry.via,
                virtual_link: !entry.physical,
            },
            _ => {
                let index = gred_hash::select_server(id, self.server_count);
                let server = ServerId {
                    switch: self.id,
                    index,
                };
                ForwardDecision::DeliverLocal {
                    server,
                    extended_to: self.extension_of(server),
                }
            }
        };
        (decision, detoured)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(neighbor: usize, x: f64, y: f64) -> NeighborEntry {
        NeighborEntry {
            neighbor,
            position: Point2::new(x, y),
            via: neighbor,
            physical: true,
        }
    }

    #[test]
    fn local_minimum_peek_agrees_with_decide_and_does_not_count() {
        let mut sw = SwitchDataplane::new(3, Point2::new(0.5, 0.5), 4);
        sw.install_neighbor(entry(1, 0.0, 0.0));
        sw.install_neighbor(entry(2, 1.0, 1.0));
        let id = DataId::new("k");
        for pos in [
            Point2::new(0.5, 0.52),
            Point2::new(0.1, 0.1),
            Point2::new(0.9, 0.9),
        ] {
            let counted = sw.packets_processed();
            let peek = sw.is_local_minimum(pos);
            assert_eq!(
                sw.packets_processed(),
                counted,
                "the peek must not count as a processed packet"
            );
            let local = matches!(sw.decide(pos, &id), ForwardDecision::DeliverLocal { .. });
            assert_eq!(peek, local, "peek disagrees with decide at {pos:?}");
        }
    }

    #[test]
    fn delivers_locally_when_closest() {
        let mut sw = SwitchDataplane::new(3, Point2::new(0.5, 0.5), 4);
        sw.install_neighbor(entry(1, 0.0, 0.0));
        sw.install_neighbor(entry(2, 1.0, 1.0));
        let id = DataId::new("k");
        match sw.decide(Point2::new(0.5, 0.52), &id) {
            ForwardDecision::DeliverLocal {
                server,
                extended_to,
            } => {
                assert_eq!(server.switch, 3);
                assert_eq!(server.index, gred_hash::select_server(&id, 4));
                assert_eq!(extended_to, None);
            }
            other => panic!("expected local delivery, got {other:?}"),
        }
    }

    #[test]
    fn forwards_to_closest_neighbor() {
        let mut sw = SwitchDataplane::new(0, Point2::new(0.0, 0.0), 1);
        sw.install_neighbor(entry(1, 0.5, 0.5));
        sw.install_neighbor(entry(2, 1.0, 1.0));
        match sw.decide(Point2::new(0.9, 0.9), &DataId::new("k")) {
            ForwardDecision::Forward {
                neighbor,
                next_hop,
                virtual_link,
            } => {
                assert_eq!(neighbor, 2);
                assert_eq!(next_hop, 2);
                assert!(!virtual_link);
            }
            other => panic!("expected forward, got {other:?}"),
        }
    }

    #[test]
    fn multi_hop_neighbor_uses_via() {
        let mut sw = SwitchDataplane::new(0, Point2::new(0.0, 0.0), 1);
        sw.install_neighbor(NeighborEntry {
            neighbor: 5,
            position: Point2::new(0.8, 0.8),
            via: 2,
            physical: false,
        });
        match sw.decide(Point2::new(0.8, 0.8), &DataId::new("k")) {
            ForwardDecision::Forward {
                neighbor,
                next_hop,
                virtual_link,
            } => {
                assert_eq!(neighbor, 5);
                assert_eq!(next_hop, 2);
                assert!(virtual_link);
            }
            other => panic!("expected virtual-link forward, got {other:?}"),
        }
    }

    #[test]
    fn equidistant_neighbors_tie_break_lexicographically() {
        let mut sw = SwitchDataplane::new(0, Point2::new(0.0, 0.0), 1);
        sw.install_neighbor(entry(1, 0.4, 0.6));
        sw.install_neighbor(entry(2, 0.6, 0.4));
        // Target equidistant from both neighbors.
        match sw.decide(Point2::new(0.5, 0.5), &DataId::new("k")) {
            ForwardDecision::Forward { neighbor, .. } => {
                assert_eq!(neighbor, 1, "lex-smaller position (0.4, 0.6) wins");
            }
            other => panic!("expected forward, got {other:?}"),
        }
    }

    #[test]
    fn extension_rewrite_applies_on_delivery() {
        let mut sw = SwitchDataplane::new(1, Point2::new(0.5, 0.5), 1);
        let original = ServerId {
            switch: 1,
            index: 0,
        };
        let takeover = ServerId {
            switch: 2,
            index: 1,
        };
        sw.install_extension(ExtensionEntry { original, takeover });
        match sw.decide(Point2::new(0.5, 0.5), &DataId::new("k")) {
            ForwardDecision::DeliverLocal {
                server,
                extended_to,
            } => {
                assert_eq!(server, original);
                assert_eq!(extended_to, Some(takeover));
            }
            other => panic!("expected local delivery, got {other:?}"),
        }
        // Retract and verify it is gone.
        assert!(sw.remove_extension(original).is_some());
        assert_eq!(sw.extension_of(original), None);
    }

    #[test]
    #[should_panic(expected = "overloaded server's switch")]
    fn extension_for_foreign_switch_panics() {
        let mut sw = SwitchDataplane::new(1, Point2::ORIGIN, 1);
        sw.install_extension(ExtensionEntry {
            original: ServerId {
                switch: 9,
                index: 0,
            },
            takeover: ServerId {
                switch: 2,
                index: 0,
            },
        });
    }

    #[test]
    fn relay_lookup_exact_and_fallback() {
        let mut sw = SwitchDataplane::new(4, Point2::ORIGIN, 1);
        sw.install_relay(DtTuple {
            sour: 1,
            pred: 1,
            succ: 7,
            dest: 9,
        });
        assert_eq!(sw.relay_next(9, 1), Some(7));
        // Fallback on dest alone when the exact (dest, sour) is missing.
        assert_eq!(sw.relay_next(9, 2), Some(7));
        assert_eq!(sw.relay_next(8, 1), None);
        assert_eq!(sw.remove_relay(9, 1).map(|t| t.succ), Some(7));
        assert_eq!(sw.relay_next(9, 1), None);
    }

    #[test]
    fn entry_accounting() {
        let mut sw = SwitchDataplane::new(0, Point2::ORIGIN, 2);
        sw.install_neighbor(entry(1, 0.1, 0.1));
        sw.install_neighbor(entry(2, 0.2, 0.2));
        sw.install_relay(DtTuple {
            sour: 0,
            pred: 0,
            succ: 1,
            dest: 5,
        });
        sw.install_extension(ExtensionEntry {
            original: ServerId {
                switch: 0,
                index: 1,
            },
            takeover: ServerId {
                switch: 1,
                index: 0,
            },
        });
        assert_eq!(sw.entry_count(), 4);
        assert_eq!(sw.entry_breakdown(), (2, 1, 1));
        // Reinstalling a neighbor replaces, not duplicates.
        sw.install_neighbor(entry(1, 0.15, 0.15));
        assert_eq!(sw.entry_breakdown().0, 2);
        sw.clear_relays();
        assert_eq!(sw.entry_breakdown().1, 0);
    }

    #[test]
    #[should_panic(expected = "transit switch")]
    fn transit_switch_cannot_decide() {
        let sw = SwitchDataplane::transit(7);
        let _ = sw.decide(Point2::ORIGIN, &DataId::new("k"));
    }

    #[test]
    fn decide_avoiding_skips_suspect_neighbors() {
        let mut sw = SwitchDataplane::new(0, Point2::new(0.0, 0.0), 1);
        sw.install_neighbor(entry(1, 0.5, 0.5));
        sw.install_neighbor(entry(2, 0.9, 0.9));
        let id = DataId::new("k");
        let target = Point2::new(1.0, 1.0);

        // All alive: the closest neighbor (2) wins, no detour.
        let (d, detoured) = sw.decide_avoiding(target, &id, &|_| true);
        assert!(matches!(d, ForwardDecision::Forward { neighbor: 2, .. }));
        assert!(!detoured);

        // Best neighbor suspect: fall back to the next-best, flagged.
        let (d, detoured) = sw.decide_avoiding(target, &id, &|n| n != 2);
        assert!(matches!(d, ForwardDecision::Forward { neighbor: 1, .. }));
        assert!(detoured, "skipping the true greedy hop is a detour");

        // Every closer neighbor suspect: deliver locally, flagged.
        let (d, detoured) = sw.decide_avoiding(target, &id, &|_| false);
        assert!(matches!(d, ForwardDecision::DeliverLocal { .. }));
        assert!(detoured);

        // Suspecting a neighbor the pipeline would not pick anyway is
        // not a detour.
        let (d, detoured) = sw.decide_avoiding(target, &id, &|n| n != 1);
        assert!(matches!(d, ForwardDecision::Forward { neighbor: 2, .. }));
        assert!(!detoured);
    }

    #[test]
    fn decide_avoiding_local_minimum_never_detours() {
        let mut sw = SwitchDataplane::new(3, Point2::new(0.5, 0.5), 2);
        sw.install_neighbor(entry(1, 0.0, 0.0));
        let id = DataId::new("k");
        // The switch itself is nearest: delivery, detour-free, under any
        // filter (filtering cannot create a forwarding candidate).
        for alive in [true, false] {
            let (d, detoured) = sw.decide_avoiding(Point2::new(0.5, 0.51), &id, &|_| alive);
            assert!(matches!(d, ForwardDecision::DeliverLocal { .. }));
            assert!(!detoured);
        }
    }

    #[test]
    fn transit_switch_relays() {
        let mut sw = SwitchDataplane::transit(7);
        sw.install_relay(DtTuple {
            sour: 0,
            pred: 2,
            succ: 3,
            dest: 9,
        });
        assert_eq!(sw.relay_next(9, 0), Some(3));
        assert_eq!(sw.server_count(), 0);
    }
}
