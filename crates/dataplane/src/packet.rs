//! GRED packet headers.
//!
//! The P4 prototype defines a custom header carrying the request tag
//! (placement vs retrieval — "a tag is used in the packet header to
//! indicate a placement/retrieval request", Section V-C), the data
//! identifier's virtual position, and, while a packet traverses a virtual
//! link, the relay fields `<dest, sour, relay>` of Section V-A.

use bytes::Bytes;
use gred_geometry::Point2;
use gred_hash::DataId;

/// Well-known id carried by stats scrape packets (observability traffic
/// concerns no data item, but the wire header still needs an id).
pub const OBS_STATS_ID: &str = "!gred/stats";
/// Well-known id carried by admin verb packets.
pub const OBS_ADMIN_ID: &str = "!gred/admin";

/// What a GRED packet asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// Store the payload at the responsible edge server.
    Placement,
    /// Fetch the data; the storing server responds.
    Retrieval,
    /// A server's answer to a retrieval.
    RetrievalResponse,
    /// Coherence traffic: drop any cached copy of the id. Sent
    /// point-to-point between peers before a write acks; never routed
    /// greedily and never relayed.
    Invalidate,
    /// Observability scrape: ask the receiving node for its live stats
    /// snapshot. Payload-free, never routed greedily, never relayed, and
    /// served inline by the reactor — a scrape must not touch the
    /// dispatch pool.
    Stats,
    /// Answer to a [`Stats`](PacketKind::Stats) scrape. The payload is an
    /// encoded `StatsSnapshot` (see the `obs` module).
    StatsResponse,
    /// Admin verb (ping / drain / crash / restart / join / leave),
    /// encoded as an `AdminOp` payload. Data nodes only answer `Ping`;
    /// lifecycle verbs are the admin endpoint's business.
    Admin,
    /// Answer to an [`Admin`](PacketKind::Admin) verb: UTF-8 result text,
    /// with [`ResponseStatus::Error`] when the verb was refused or
    /// failed.
    AdminResponse,
}

impl PacketKind {
    /// Whether this kind is a response (and may therefore legally carry a
    /// non-[`Ok`](ResponseStatus::Ok) status on the wire).
    pub fn is_response(self) -> bool {
        matches!(
            self,
            PacketKind::RetrievalResponse | PacketKind::StatsResponse | PacketKind::AdminResponse
        )
    }
}

impl std::fmt::Display for PacketKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PacketKind::Placement => "placement",
            PacketKind::Retrieval => "retrieval",
            PacketKind::RetrievalResponse => "retrieval-response",
            PacketKind::Invalidate => "invalidate",
            PacketKind::Stats => "stats",
            PacketKind::StatsResponse => "stats-response",
            PacketKind::Admin => "admin",
            PacketKind::AdminResponse => "admin-response",
        };
        f.write_str(s)
    }
}

/// Outcome carried by a response packet. Requests always carry
/// [`ResponseStatus::Ok`]; a response distinguishes a hit from a miss
/// (`NotFound`), from a server-side failure (`Error`), from a routing
/// abort caused by suspect peers (`Redirect` — the request was *not*
/// served and the client should retry elsewhere), and from a served-but-
/// detoured delivery (`Degraded` — the answer is real but greedy
/// forwarding had to route around suspect neighbors, so the one-hop
/// placement guarantee may not hold for this copy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ResponseStatus {
    /// The request succeeded (or this is a request packet).
    #[default]
    Ok,
    /// The responsible server does not store the item.
    NotFound,
    /// The request could not be served (misrouted, transit access, or a
    /// broken relay chain).
    Error,
    /// Routing aborted before reaching an owner: every viable next hop
    /// was suspect or the detour budget ran out. Nothing was stored or
    /// read — the client must retry via another access node.
    Redirect,
    /// Served, but the greedy walk detoured around suspect neighbors —
    /// the delivery switch may not be the true greedy owner.
    Degraded,
}

impl ResponseStatus {
    /// Whether a placement carrying this status actually stored the item
    /// somewhere (cleanly or on a detour owner).
    pub fn served(self) -> bool {
        matches!(self, ResponseStatus::Ok | ResponseStatus::Degraded)
    }
}

impl std::fmt::Display for ResponseStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ResponseStatus::Ok => "ok",
            ResponseStatus::NotFound => "not-found",
            ResponseStatus::Error => "error",
            ResponseStatus::Redirect => "redirect",
            ResponseStatus::Degraded => "degraded",
        };
        f.write_str(s)
    }
}

/// Virtual-link relay header: present while the packet is being tunnelled
/// between two multi-hop DT neighbors. Field names follow the paper's
/// `d = <d.dest, d.sour, d.relay, d.data>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RelayHeader {
    /// End switch of the virtual link.
    pub dest: usize,
    /// Source switch of the virtual link.
    pub sour: usize,
    /// Next relay switch the packet is currently addressed to.
    pub relay: usize,
}

/// A GRED data-plane packet.
///
/// ```
/// use gred_dataplane::{Packet, PacketKind};
/// use gred_hash::DataId;
/// let p = Packet::placement(DataId::new("k"), b"value".as_ref());
/// assert_eq!(p.kind, PacketKind::Placement);
/// assert!(p.relay.is_none());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Packet {
    /// Request tag.
    pub kind: PacketKind,
    /// The data identifier the request concerns.
    pub id: DataId,
    /// The identifier's position in the virtual space (`H(d)` reduced to
    /// the unit square). Stored in the header so every switch on the path
    /// can compare neighbor distances without re-hashing.
    pub position: Point2,
    /// Virtual-link relay header, when traversing a virtual link.
    pub relay: Option<RelayHeader>,
    /// Response outcome (always [`ResponseStatus::Ok`] on requests).
    pub status: ResponseStatus,
    /// Physical hops this packet has traversed — an in-band telemetry
    /// counter incremented by every switch that forwards the packet, so a
    /// response can report the request's routing cost to the client.
    pub hops: u16,
    /// Detours this packet has taken: forwarding decisions where the true
    /// greedy next hop was suspect and a farther neighbor (or local
    /// delivery) was used instead. Nonzero detours on a delivered packet
    /// mean the one-hop routing guarantee may not hold for it.
    pub detours: u16,
    /// Payload (data contents for placements, empty for retrievals).
    pub payload: Bytes,
}

impl Packet {
    /// A placement request for `id` carrying `payload`.
    pub fn placement(id: DataId, payload: impl Into<Bytes>) -> Self {
        let position = gred_hash::virtual_position(&id);
        Packet {
            kind: PacketKind::Placement,
            position: Point2::new(position.0, position.1),
            id,
            relay: None,
            status: ResponseStatus::Ok,
            hops: 0,
            detours: 0,
            payload: payload.into(),
        }
    }

    /// A retrieval request for `id`.
    pub fn retrieval(id: DataId) -> Self {
        let position = gred_hash::virtual_position(&id);
        Packet {
            kind: PacketKind::Retrieval,
            position: Point2::new(position.0, position.1),
            id,
            relay: None,
            status: ResponseStatus::Ok,
            hops: 0,
            detours: 0,
            payload: Bytes::new(),
        }
    }

    /// A response to a retrieval, carrying the stored payload.
    pub fn response(id: DataId, payload: impl Into<Bytes>) -> Self {
        let position = gred_hash::virtual_position(&id);
        Packet {
            kind: PacketKind::RetrievalResponse,
            position: Point2::new(position.0, position.1),
            id,
            relay: None,
            status: ResponseStatus::Ok,
            hops: 0,
            detours: 0,
            payload: payload.into(),
        }
    }

    /// An invalidation notice for `id`: the receiver must drop any
    /// cached copy before the sender's write acks. Payload-free.
    pub fn invalidate(id: DataId) -> Self {
        let position = gred_hash::virtual_position(&id);
        Packet {
            kind: PacketKind::Invalidate,
            position: Point2::new(position.0, position.1),
            id,
            relay: None,
            status: ResponseStatus::Ok,
            hops: 0,
            detours: 0,
            payload: Bytes::new(),
        }
    }

    /// A stats scrape request. Observability packets concern no data
    /// item, so they carry a fixed well-known id (and its hashed
    /// position, which routing never looks at — stats are answered by
    /// whichever node receives them).
    pub fn stats_request() -> Self {
        let id = DataId::new(OBS_STATS_ID);
        let position = gred_hash::virtual_position(&id);
        Packet {
            kind: PacketKind::Stats,
            position: Point2::new(position.0, position.1),
            id,
            relay: None,
            status: ResponseStatus::Ok,
            hops: 0,
            detours: 0,
            payload: Bytes::new(),
        }
    }

    /// A stats scrape answer carrying an encoded snapshot.
    pub fn stats_response(payload: impl Into<Bytes>) -> Self {
        let mut p = Packet::stats_request();
        p.kind = PacketKind::StatsResponse;
        p.payload = payload.into();
        p
    }

    /// An admin verb carrying an encoded `AdminOp` payload.
    pub fn admin_request(payload: impl Into<Bytes>) -> Self {
        let id = DataId::new(OBS_ADMIN_ID);
        let position = gred_hash::virtual_position(&id);
        Packet {
            kind: PacketKind::Admin,
            position: Point2::new(position.0, position.1),
            id,
            relay: None,
            status: ResponseStatus::Ok,
            hops: 0,
            detours: 0,
            payload: payload.into(),
        }
    }

    /// A successful admin answer carrying UTF-8 result text.
    pub fn admin_response(text: impl Into<Bytes>) -> Self {
        let mut p = Packet::admin_request(text);
        p.kind = PacketKind::AdminResponse;
        p
    }

    /// A refused/failed admin answer: UTF-8 error text with
    /// [`ResponseStatus::Error`].
    pub fn admin_error(text: impl Into<Bytes>) -> Self {
        let mut p = Packet::admin_response(text);
        p.status = ResponseStatus::Error;
        p
    }

    /// A miss response: the responsible server stores nothing under `id`.
    pub fn not_found(id: DataId) -> Self {
        let mut p = Packet::response(id, Bytes::new());
        p.status = ResponseStatus::NotFound;
        p
    }

    /// A failure response: the request could not be served.
    pub fn error_response(id: DataId) -> Self {
        let mut p = Packet::response(id, Bytes::new());
        p.status = ResponseStatus::Error;
        p
    }

    /// A redirect response: routing aborted on suspect peers / detour
    /// budget, the client should retry via a different access node.
    pub fn redirect_response(id: DataId) -> Self {
        let mut p = Packet::response(id, Bytes::new());
        p.status = ResponseStatus::Redirect;
        p
    }

    /// Whether the packet is currently traversing a virtual link
    /// (`d.relay != null` in the paper's notation).
    pub fn in_virtual_link(&self) -> bool {
        self.relay.is_some()
    }

    /// Enters a virtual link from `sour` to `dest`, initially addressed to
    /// `relay`.
    pub fn with_relay(mut self, sour: usize, relay: usize, dest: usize) -> Self {
        self.relay = Some(RelayHeader { dest, sour, relay });
        self
    }

    /// Leaves the virtual link (the header is popped at the link end).
    pub fn without_relay(mut self) -> Self {
        self.relay = None;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind_and_position() {
        let id = DataId::new("abc");
        let place = Packet::placement(id.clone(), b"v".as_ref());
        let get = Packet::retrieval(id.clone());
        let resp = Packet::response(id.clone(), b"v".as_ref());
        assert_eq!(place.kind, PacketKind::Placement);
        assert_eq!(get.kind, PacketKind::Retrieval);
        assert_eq!(resp.kind, PacketKind::RetrievalResponse);
        // All three carry the same hashed position.
        assert_eq!(place.position, get.position);
        assert_eq!(get.position, resp.position);
        let (x, y) = gred_hash::virtual_position(&id);
        assert_eq!(place.position, Point2::new(x, y));
    }

    #[test]
    fn relay_header_lifecycle() {
        let p = Packet::retrieval(DataId::new("k"));
        assert!(!p.in_virtual_link());
        let p = p.with_relay(1, 2, 5);
        assert!(p.in_virtual_link());
        assert_eq!(
            p.relay,
            Some(RelayHeader {
                dest: 5,
                sour: 1,
                relay: 2
            })
        );
        let p = p.without_relay();
        assert!(!p.in_virtual_link());
    }

    #[test]
    fn payloads() {
        let place = Packet::placement(DataId::new("k"), b"hello".as_ref());
        assert_eq!(&place.payload[..], b"hello");
        assert!(Packet::retrieval(DataId::new("k")).payload.is_empty());
    }

    #[test]
    fn status_constructors() {
        let id = DataId::new("k");
        assert_eq!(
            Packet::placement(id.clone(), Bytes::new()).status,
            ResponseStatus::Ok
        );
        let miss = Packet::not_found(id.clone());
        assert_eq!(miss.kind, PacketKind::RetrievalResponse);
        assert_eq!(miss.status, ResponseStatus::NotFound);
        assert!(miss.payload.is_empty());
        let err = Packet::error_response(id.clone());
        assert_eq!(err.kind, PacketKind::RetrievalResponse);
        assert_eq!(err.status, ResponseStatus::Error);
        let redir = Packet::redirect_response(id);
        assert_eq!(redir.kind, PacketKind::RetrievalResponse);
        assert_eq!(redir.status, ResponseStatus::Redirect);
        assert!(redir.payload.is_empty());
    }

    #[test]
    fn served_statuses() {
        assert!(ResponseStatus::Ok.served());
        assert!(ResponseStatus::Degraded.served());
        assert!(!ResponseStatus::NotFound.served());
        assert!(!ResponseStatus::Error.served());
        assert!(!ResponseStatus::Redirect.served());
    }

    #[test]
    fn hops_start_at_zero() {
        assert_eq!(Packet::retrieval(DataId::new("k")).hops, 0);
        assert_eq!(Packet::response(DataId::new("k"), Bytes::new()).hops, 0);
    }

    #[test]
    fn status_display() {
        assert_eq!(ResponseStatus::Ok.to_string(), "ok");
        assert_eq!(ResponseStatus::NotFound.to_string(), "not-found");
        assert_eq!(ResponseStatus::Error.to_string(), "error");
        assert_eq!(ResponseStatus::Redirect.to_string(), "redirect");
        assert_eq!(ResponseStatus::Degraded.to_string(), "degraded");
    }

    #[test]
    fn kind_display() {
        assert_eq!(PacketKind::Placement.to_string(), "placement");
        assert_eq!(PacketKind::Retrieval.to_string(), "retrieval");
        assert_eq!(
            PacketKind::RetrievalResponse.to_string(),
            "retrieval-response"
        );
        assert_eq!(PacketKind::Invalidate.to_string(), "invalidate");
        assert_eq!(PacketKind::Stats.to_string(), "stats");
        assert_eq!(PacketKind::StatsResponse.to_string(), "stats-response");
        assert_eq!(PacketKind::Admin.to_string(), "admin");
        assert_eq!(PacketKind::AdminResponse.to_string(), "admin-response");
    }

    #[test]
    fn response_kinds() {
        assert!(PacketKind::RetrievalResponse.is_response());
        assert!(PacketKind::StatsResponse.is_response());
        assert!(PacketKind::AdminResponse.is_response());
        assert!(!PacketKind::Placement.is_response());
        assert!(!PacketKind::Retrieval.is_response());
        assert!(!PacketKind::Invalidate.is_response());
        assert!(!PacketKind::Stats.is_response());
        assert!(!PacketKind::Admin.is_response());
    }

    #[test]
    fn observability_constructors() {
        let scrape = Packet::stats_request();
        assert_eq!(scrape.kind, PacketKind::Stats);
        assert!(scrape.payload.is_empty());
        assert!(scrape.relay.is_none());
        assert_eq!(scrape.id, DataId::new(OBS_STATS_ID));

        let snap = Packet::stats_response(b"snapshot".as_ref());
        assert_eq!(snap.kind, PacketKind::StatsResponse);
        assert_eq!(snap.status, ResponseStatus::Ok);
        assert_eq!(&snap.payload[..], b"snapshot");
        assert_eq!(snap.id, scrape.id);

        let verb = Packet::admin_request(b"op".as_ref());
        assert_eq!(verb.kind, PacketKind::Admin);
        assert_eq!(verb.id, DataId::new(OBS_ADMIN_ID));

        let ok = Packet::admin_response(b"done".as_ref());
        assert_eq!(ok.kind, PacketKind::AdminResponse);
        assert_eq!(ok.status, ResponseStatus::Ok);
        assert_eq!(&ok.payload[..], b"done");

        let err = Packet::admin_error(b"refused".as_ref());
        assert_eq!(err.kind, PacketKind::AdminResponse);
        assert_eq!(err.status, ResponseStatus::Error);
        assert_eq!(&err.payload[..], b"refused");
    }

    #[test]
    fn invalidate_constructor_is_payload_free_and_unrouted() {
        let id = DataId::new("k");
        let p = Packet::invalidate(id.clone());
        assert_eq!(p.kind, PacketKind::Invalidate);
        assert_eq!(p.status, ResponseStatus::Ok);
        assert!(p.payload.is_empty());
        assert!(p.relay.is_none());
        let (x, y) = gred_hash::virtual_position(&id);
        assert_eq!(p.position, Point2::new(x, y));
    }
}
