//! Observability payloads: the stats snapshot a node serves over the
//! wire and the admin verbs the control endpoint accepts.
//!
//! The wire layer ([`crate::wire`]) only moves opaque payload bytes;
//! this module defines what those bytes *are* for the `Stats`/`Admin`
//! packet kinds. Both codecs are versioned, big-endian, and total: a
//! decoder either reproduces the encoded value byte-exactly or returns
//! a [`CodecError`] — never a panic — because scrape responses cross
//! trust boundaries exactly like data packets.
//!
//! A [`StatsSnapshot`] is assembled by the node reactor *inline* (no
//! dispatch-pool hop, no lock waits — see the node's inline-serve
//! guarantee) and therefore only carries quantities readable from
//! atomics, gauges, and try-locks.

use crate::stats::NodeHotStats;

/// Codec version for [`StatsSnapshot`] and [`AdminOp`] payloads.
const OBS_VERSION: u8 = 1;

/// Why an observability payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Fewer bytes than the field being read requires.
    Truncated,
    /// Unsupported codec version byte.
    BadVersion(u8),
    /// Unknown admin-verb tag.
    BadTag(u8),
    /// Bytes remain after a complete value.
    TrailingGarbage {
        /// Number of unexpected trailing bytes.
        extra: usize,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "observability payload truncated"),
            CodecError::BadVersion(v) => write!(f, "unsupported observability codec version {v}"),
            CodecError::BadTag(t) => write!(f, "unknown admin verb tag {t}"),
            CodecError::TrailingGarbage { extra } => {
                write!(f, "{extra} trailing bytes after observability payload")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// A little big-endian cursor shared by both decoders.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, at: 0 }
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        let b = *self.bytes.get(self.at).ok_or(CodecError::Truncated)?;
        self.at += 1;
        Ok(b)
    }

    fn u16(&mut self) -> Result<u16, CodecError> {
        let s = self
            .bytes
            .get(self.at..self.at + 2)
            .ok_or(CodecError::Truncated)?;
        self.at += 2;
        Ok(u16::from_be_bytes(s.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        let s = self
            .bytes
            .get(self.at..self.at + 4)
            .ok_or(CodecError::Truncated)?;
        self.at += 4;
        Ok(u32::from_be_bytes(s.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        let s = self
            .bytes
            .get(self.at..self.at + 8)
            .ok_or(CodecError::Truncated)?;
        self.at += 8;
        Ok(u64::from_be_bytes(s.try_into().expect("8 bytes")))
    }

    fn finish(self) -> Result<(), CodecError> {
        if self.at != self.bytes.len() {
            return Err(CodecError::TrailingGarbage {
                extra: self.bytes.len() - self.at,
            });
        }
        Ok(())
    }
}

/// Live counters for one peer link, as seen by the scraped node.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LinkStats {
    /// Peer switch id the link points at.
    pub peer: u32,
    /// Whether a live multiplexed connection to the peer exists right
    /// now. A link whose slot is momentarily locked by a connecting
    /// thread is reported as connected — the scrape never waits.
    pub connected: bool,
    /// Milliseconds until the peer's suspicion expires; `0` when the
    /// peer is not suspect.
    pub suspect_ms_left: u64,
    /// Times the scraped node rebuilt its multiplexed connection to
    /// this peer after an RPC error.
    pub reconnects: u64,
}

/// Everything one node exports in answer to a `Stats` scrape.
///
/// Field groups mirror where the numbers live on the node: the
/// request-accounting counters, reactor gauges, the data-plane table
/// size, the hot-path counter block, and per-peer link state.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsSnapshot {
    /// Switch id of the scraped node.
    pub switch: u32,
    /// Milliseconds since the node booted.
    pub uptime_ms: u64,
    /// Requests accepted (placement/retrieval/relay entering routing).
    pub requests: u64,
    /// Packets forwarded to a peer by greedy routing.
    pub forwarded: u64,
    /// Packets forwarded along a virtual-link relay chain.
    pub relayed: u64,
    /// Requests delivered (served) locally.
    pub delivered: u64,
    /// Requests answered with an error status.
    pub errors: u64,
    /// Items in the local store.
    pub stored_items: u64,
    /// Sockets currently registered with the reactor.
    pub open_connections: u32,
    /// Bytes sitting in reactor write queues, accepted from handlers
    /// but not yet written to any socket — the node's write backlog.
    pub queued_bytes: u64,
    /// Dispatch workers spawned since boot (never shrinks; a scrape
    /// storm must not move it).
    pub dispatch_workers: u32,
    /// Rows in the node's forwarding table (DT neighbors + extensions).
    pub table_rows: u64,
    /// The hot-path counter block shared with the in-process API.
    pub hot: NodeHotStats,
    /// Per-peer link counters, indexed by peer switch id.
    pub links: Vec<LinkStats>,
}

impl StatsSnapshot {
    /// Serializes the snapshot as a `StatsResponse` payload.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot reports more than 65535 links; a node's
    /// peer table is bounded by the switch count.
    pub fn encode(&self) -> Vec<u8> {
        assert!(
            self.links.len() <= u16::MAX as usize,
            "snapshot with {} links exceeds the u16 count field",
            self.links.len()
        );
        let mut out = Vec::with_capacity(1 + 4 + 8 * 8 + 4 + 4 + 12 * 8 + 2 + self.links.len() * 21);
        out.push(OBS_VERSION);
        out.extend_from_slice(&self.switch.to_be_bytes());
        out.extend_from_slice(&self.uptime_ms.to_be_bytes());
        out.extend_from_slice(&self.requests.to_be_bytes());
        out.extend_from_slice(&self.forwarded.to_be_bytes());
        out.extend_from_slice(&self.relayed.to_be_bytes());
        out.extend_from_slice(&self.delivered.to_be_bytes());
        out.extend_from_slice(&self.errors.to_be_bytes());
        out.extend_from_slice(&self.stored_items.to_be_bytes());
        out.extend_from_slice(&self.open_connections.to_be_bytes());
        out.extend_from_slice(&self.queued_bytes.to_be_bytes());
        out.extend_from_slice(&self.dispatch_workers.to_be_bytes());
        out.extend_from_slice(&self.table_rows.to_be_bytes());
        for field in hot_fields(&self.hot) {
            out.extend_from_slice(&field.to_be_bytes());
        }
        out.extend_from_slice(&(self.links.len() as u16).to_be_bytes());
        for link in &self.links {
            out.extend_from_slice(&link.peer.to_be_bytes());
            out.push(u8::from(link.connected));
            out.extend_from_slice(&link.suspect_ms_left.to_be_bytes());
            out.extend_from_slice(&link.reconnects.to_be_bytes());
        }
        out
    }

    /// Decodes a `StatsResponse` payload.
    ///
    /// # Errors
    ///
    /// [`CodecError`] for truncated, over-long, or version-mismatched
    /// payloads.
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(bytes);
        let version = r.u8()?;
        if version != OBS_VERSION {
            return Err(CodecError::BadVersion(version));
        }
        let mut snap = StatsSnapshot {
            switch: r.u32()?,
            uptime_ms: r.u64()?,
            requests: r.u64()?,
            forwarded: r.u64()?,
            relayed: r.u64()?,
            delivered: r.u64()?,
            errors: r.u64()?,
            stored_items: r.u64()?,
            open_connections: r.u32()?,
            queued_bytes: r.u64()?,
            dispatch_workers: r.u32()?,
            table_rows: r.u64()?,
            hot: NodeHotStats::default(),
            links: Vec::new(),
        };
        let mut hot = [0u64; HOT_FIELDS];
        for field in &mut hot {
            *field = r.u64()?;
        }
        snap.hot = hot_from_fields(&hot);
        let count = r.u16()? as usize;
        snap.links.reserve(count);
        for _ in 0..count {
            snap.links.push(LinkStats {
                peer: r.u32()?,
                connected: r.u8()? != 0,
                suspect_ms_left: r.u64()?,
                reconnects: r.u64()?,
            });
        }
        r.finish()?;
        Ok(snap)
    }

    /// Whether any peer is currently suspect from this node's view.
    pub fn has_suspects(&self) -> bool {
        self.links.iter().any(|l| l.suspect_ms_left > 0)
    }

    /// Hand-rolled JSON object (the serde shim has no serializer). All
    /// fields are numbers or booleans, so no string escaping is needed.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(640);
        s.push_str(&format!(
            "{{\"switch\":{},\"uptime_ms\":{},\"requests\":{},\"forwarded\":{},\
             \"relayed\":{},\"delivered\":{},\"errors\":{},\"stored_items\":{},\
             \"open_connections\":{},\"queued_bytes\":{},\"dispatch_workers\":{},\
             \"table_rows\":{}",
            self.switch,
            self.uptime_ms,
            self.requests,
            self.forwarded,
            self.relayed,
            self.delivered,
            self.errors,
            self.stored_items,
            self.open_connections,
            self.queued_bytes,
            self.dispatch_workers,
            self.table_rows,
        ));
        s.push_str(",\"hot\":{");
        for (i, (name, value)) in HOT_FIELD_NAMES
            .iter()
            .zip(hot_fields(&self.hot))
            .enumerate()
        {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{name}\":{value}"));
        }
        s.push_str("},\"links\":[");
        for (i, link) in self.links.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"peer\":{},\"connected\":{},\"suspect_ms_left\":{},\"reconnects\":{}}}",
                link.peer, link.connected, link.suspect_ms_left, link.reconnects
            ));
        }
        s.push_str("]}");
        s
    }
}

/// Number of `u64` counters in [`NodeHotStats`].
const HOT_FIELDS: usize = 12;

/// JSON keys for the hot counters, in wire order.
const HOT_FIELD_NAMES: [&str; HOT_FIELDS] = [
    "oneshot_fallbacks",
    "link_reconnects",
    "store_shard_contention",
    "frames_decoded",
    "encode_buf_reuses",
    "peers_suspected",
    "detour_forwards",
    "redirects_issued",
    "cache_hits",
    "cache_misses",
    "cache_evictions",
    "invalidations_rx",
];

/// The hot counters in their fixed wire order. Destructures the struct
/// so adding a field to [`NodeHotStats`] is a compile error here until
/// the codec learns about it.
fn hot_fields(hot: &NodeHotStats) -> [u64; HOT_FIELDS] {
    let NodeHotStats {
        oneshot_fallbacks,
        link_reconnects,
        store_shard_contention,
        frames_decoded,
        encode_buf_reuses,
        peers_suspected,
        detour_forwards,
        redirects_issued,
        cache_hits,
        cache_misses,
        cache_evictions,
        invalidations_rx,
    } = *hot;
    [
        oneshot_fallbacks,
        link_reconnects,
        store_shard_contention,
        frames_decoded,
        encode_buf_reuses,
        peers_suspected,
        detour_forwards,
        redirects_issued,
        cache_hits,
        cache_misses,
        cache_evictions,
        invalidations_rx,
    ]
}

fn hot_from_fields(fields: &[u64; HOT_FIELDS]) -> NodeHotStats {
    NodeHotStats {
        oneshot_fallbacks: fields[0],
        link_reconnects: fields[1],
        store_shard_contention: fields[2],
        frames_decoded: fields[3],
        encode_buf_reuses: fields[4],
        peers_suspected: fields[5],
        detour_forwards: fields[6],
        redirects_issued: fields[7],
        cache_hits: fields[8],
        cache_misses: fields[9],
        cache_evictions: fields[10],
        invalidations_rx: fields[11],
    }
}

/// An admin verb carried in an `Admin` packet payload.
///
/// Data nodes answer only [`Ping`](AdminOp::Ping) (inline, like a
/// scrape); every lifecycle verb is the admin endpoint's business
/// because only the orchestrator owns the network model and node
/// handles needed to act on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdminOp {
    /// Liveness probe: answered by every endpoint.
    Ping,
    /// Crash the node on `switch` (chaos injection over the wire).
    Crash {
        /// Victim switch id.
        switch: u32,
    },
    /// Restart a previously crashed `switch` as a transit relay.
    Restart {
        /// Slot to revive.
        switch: u32,
    },
    /// Re-home misplaced items cluster-wide (the operator runbook step
    /// after topology churn).
    Drain,
    /// Add a switch linked to `neighbors`, hosting servers with the
    /// given `capacities`.
    Join {
        /// Existing switches the newcomer links to.
        neighbors: Vec<u32>,
        /// Capacity of each server hosted on the newcomer.
        capacities: Vec<u64>,
    },
    /// Gracefully remove `switch` from the network.
    Leave {
        /// Switch id to remove.
        switch: u32,
    },
}

const TAG_PING: u8 = 0;
const TAG_CRASH: u8 = 1;
const TAG_RESTART: u8 = 2;
const TAG_DRAIN: u8 = 3;
const TAG_JOIN: u8 = 4;
const TAG_LEAVE: u8 = 5;

impl AdminOp {
    /// Serializes the verb as an `Admin` packet payload.
    ///
    /// # Panics
    ///
    /// Panics if a `Join` lists more than 65535 neighbors or servers.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        out.push(OBS_VERSION);
        match self {
            AdminOp::Ping => out.push(TAG_PING),
            AdminOp::Crash { switch } => {
                out.push(TAG_CRASH);
                out.extend_from_slice(&switch.to_be_bytes());
            }
            AdminOp::Restart { switch } => {
                out.push(TAG_RESTART);
                out.extend_from_slice(&switch.to_be_bytes());
            }
            AdminOp::Drain => out.push(TAG_DRAIN),
            AdminOp::Join {
                neighbors,
                capacities,
            } => {
                assert!(
                    neighbors.len() <= u16::MAX as usize && capacities.len() <= u16::MAX as usize,
                    "join verb exceeds the u16 count fields"
                );
                out.push(TAG_JOIN);
                out.extend_from_slice(&(neighbors.len() as u16).to_be_bytes());
                for n in neighbors {
                    out.extend_from_slice(&n.to_be_bytes());
                }
                out.extend_from_slice(&(capacities.len() as u16).to_be_bytes());
                for c in capacities {
                    out.extend_from_slice(&c.to_be_bytes());
                }
            }
            AdminOp::Leave { switch } => {
                out.push(TAG_LEAVE);
                out.extend_from_slice(&switch.to_be_bytes());
            }
        }
        out
    }

    /// Decodes an `Admin` packet payload.
    ///
    /// # Errors
    ///
    /// [`CodecError`] for truncated payloads, unknown tags, or a
    /// version mismatch.
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(bytes);
        let version = r.u8()?;
        if version != OBS_VERSION {
            return Err(CodecError::BadVersion(version));
        }
        let op = match r.u8()? {
            TAG_PING => AdminOp::Ping,
            TAG_CRASH => AdminOp::Crash { switch: r.u32()? },
            TAG_RESTART => AdminOp::Restart { switch: r.u32()? },
            TAG_DRAIN => AdminOp::Drain,
            TAG_JOIN => {
                let n = r.u16()? as usize;
                let mut neighbors = Vec::with_capacity(n);
                for _ in 0..n {
                    neighbors.push(r.u32()?);
                }
                let c = r.u16()? as usize;
                let mut capacities = Vec::with_capacity(c);
                for _ in 0..c {
                    capacities.push(r.u64()?);
                }
                AdminOp::Join {
                    neighbors,
                    capacities,
                }
            }
            TAG_LEAVE => AdminOp::Leave { switch: r.u32()? },
            other => return Err(CodecError::BadTag(other)),
        };
        r.finish()?;
        Ok(op)
    }
}

impl std::fmt::Display for AdminOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdminOp::Ping => write!(f, "ping"),
            AdminOp::Crash { switch } => write!(f, "crash {switch}"),
            AdminOp::Restart { switch } => write!(f, "restart {switch}"),
            AdminOp::Drain => write!(f, "drain"),
            AdminOp::Join {
                neighbors,
                capacities,
            } => write!(f, "join {neighbors:?} x{}", capacities.len()),
            AdminOp::Leave { switch } => write!(f, "leave {switch}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> StatsSnapshot {
        StatsSnapshot {
            switch: 7,
            uptime_ms: 123_456,
            requests: 1000,
            forwarded: 400,
            relayed: 25,
            delivered: 575,
            errors: 3,
            stored_items: 88,
            open_connections: 9,
            queued_bytes: 4096,
            dispatch_workers: 2,
            table_rows: 14,
            hot: NodeHotStats {
                oneshot_fallbacks: 1,
                link_reconnects: 2,
                store_shard_contention: 3,
                frames_decoded: 4,
                encode_buf_reuses: 5,
                peers_suspected: 6,
                detour_forwards: 7,
                redirects_issued: 8,
                cache_hits: 9,
                cache_misses: 10,
                cache_evictions: 11,
                invalidations_rx: 12,
            },
            links: vec![
                LinkStats {
                    peer: 3,
                    connected: true,
                    suspect_ms_left: 0,
                    reconnects: 2,
                },
                LinkStats {
                    peer: 11,
                    connected: false,
                    suspect_ms_left: 240,
                    reconnects: 0,
                },
            ],
        }
    }

    #[test]
    fn snapshot_round_trip() {
        let snap = sample_snapshot();
        assert_eq!(StatsSnapshot::decode(&snap.encode()).unwrap(), snap);
        let empty = StatsSnapshot::default();
        assert_eq!(StatsSnapshot::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn snapshot_truncation_detected_at_every_prefix() {
        let full = sample_snapshot().encode();
        for len in 0..full.len() {
            assert!(
                StatsSnapshot::decode(&full[..len]).is_err(),
                "prefix of {len} bytes must not decode"
            );
        }
    }

    #[test]
    fn snapshot_rejects_trailing_garbage_and_bad_version() {
        let mut b = sample_snapshot().encode();
        b.push(0xFF);
        assert_eq!(
            StatsSnapshot::decode(&b),
            Err(CodecError::TrailingGarbage { extra: 1 })
        );
        let mut b = sample_snapshot().encode();
        b[0] = 9;
        assert_eq!(StatsSnapshot::decode(&b), Err(CodecError::BadVersion(9)));
    }

    #[test]
    fn suspects_visible() {
        assert!(sample_snapshot().has_suspects());
        let mut clean = sample_snapshot();
        for link in &mut clean.links {
            link.suspect_ms_left = 0;
        }
        assert!(!clean.has_suspects());
    }

    #[test]
    fn snapshot_json_carries_every_field() {
        let json = sample_snapshot().to_json();
        for key in [
            "\"switch\":7",
            "\"queued_bytes\":4096",
            "\"invalidations_rx\":12",
            "\"peer\":11",
            "\"connected\":false",
            "\"suspect_ms_left\":240",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // Sanity: balanced braces/brackets (the shim has no JSON parser).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(
            json.matches('[').count(),
            json.matches(']').count(),
            "{json}"
        );
    }

    #[test]
    fn admin_op_round_trips() {
        for op in [
            AdminOp::Ping,
            AdminOp::Crash { switch: 3 },
            AdminOp::Restart { switch: 4 },
            AdminOp::Drain,
            AdminOp::Join {
                neighbors: vec![0, 2, 5],
                capacities: vec![10_000, 20_000],
            },
            AdminOp::Join {
                neighbors: vec![],
                capacities: vec![],
            },
            AdminOp::Leave { switch: 15 },
        ] {
            assert_eq!(AdminOp::decode(&op.encode()).unwrap(), op, "{op}");
        }
    }

    #[test]
    fn admin_op_rejects_malformed_payloads() {
        assert_eq!(AdminOp::decode(&[]), Err(CodecError::Truncated));
        assert_eq!(AdminOp::decode(&[OBS_VERSION]), Err(CodecError::Truncated));
        assert_eq!(
            AdminOp::decode(&[OBS_VERSION, 99]),
            Err(CodecError::BadTag(99))
        );
        assert_eq!(AdminOp::decode(&[7, TAG_PING]), Err(CodecError::BadVersion(7)));
        let mut b = AdminOp::Ping.encode();
        b.push(0);
        assert_eq!(
            AdminOp::decode(&b),
            Err(CodecError::TrailingGarbage { extra: 1 })
        );
        // Truncated mid-join.
        let full = AdminOp::Join {
            neighbors: vec![1, 2],
            capacities: vec![9],
        }
        .encode();
        for len in 0..full.len() {
            assert!(AdminOp::decode(&full[..len]).is_err(), "prefix {len}");
        }
    }
}
