#![warn(missing_docs)]

//! Hashing primitives for the GRED data placement and retrieval service.
//!
//! GRED maps every data identifier to a position in a virtual 2D unit square
//! by hashing the identifier with SHA-256 and interpreting the last eight
//! bytes of the digest as two fixed-point coordinates (Section III of the
//! paper). This crate provides:
//!
//! - [`sha256`]: a from-scratch FIPS 180-4 SHA-256 implementation, so the
//!   repository carries no external cryptography dependency,
//! - [`position`]: the digest → `[0,1]²` coordinate mapping,
//! - [`server`]: the `H(d) mod s` rule a switch uses to pick one of its
//!   attached edge servers,
//! - [`hex`]: small hex-encoding helpers used by tests and debug output.
//!
//! # Examples
//!
//! ```
//! use gred_hash::{DataId, position::virtual_position};
//!
//! let id = DataId::new("sensor-42/frame/0001");
//! let p = virtual_position(&id);
//! assert!((0.0..=1.0).contains(&p.0) && (0.0..=1.0).contains(&p.1));
//! ```

pub mod hex;
pub mod position;
pub mod server;
pub mod sha256;

pub use position::virtual_position;
pub use server::select_server;
pub use sha256::{Digest, Sha256};

use serde::{Deserialize, Serialize};

/// An application-level data identifier.
///
/// GRED treats identifiers as opaque byte strings; everything the protocol
/// needs (virtual position, owning server index, replica positions) is
/// derived from the SHA-256 digest of these bytes.
///
/// ```
/// use gred_hash::DataId;
/// let a = DataId::new("video/cam-3/chunk-17");
/// let b = DataId::from_bytes(b"video/cam-3/chunk-17".to_vec());
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DataId(Vec<u8>);

impl DataId {
    /// Creates an identifier from anything string-like.
    pub fn new(s: impl AsRef<str>) -> Self {
        DataId(s.as_ref().as_bytes().to_vec())
    }

    /// Creates an identifier from raw bytes.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        DataId(bytes)
    }

    /// The raw identifier bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// SHA-256 digest of the identifier.
    pub fn digest(&self) -> Digest {
        sha256::digest(&self.0)
    }

    /// The identifier for the `serial`-th replica of this data item.
    ///
    /// The paper (Section VI, "Data copies") concatenates the identifier with
    /// a serial number and hashes the result, so every copy lands at an
    /// independent position in the virtual space. Serial 0 is the primary.
    pub fn replica(&self, serial: u32) -> DataId {
        if serial == 0 {
            return self.clone();
        }
        let mut bytes = self.0.clone();
        bytes.push(b'#');
        bytes.extend_from_slice(&serial.to_be_bytes());
        DataId(bytes)
    }
}

impl From<&str> for DataId {
    fn from(s: &str) -> Self {
        DataId::new(s)
    }
}

impl From<String> for DataId {
    fn from(s: String) -> Self {
        DataId(s.into_bytes())
    }
}

impl std::fmt::Display for DataId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match std::str::from_utf8(&self.0) {
            Ok(s) => write!(f, "{s}"),
            Err(_) => write!(f, "0x{}", hex::encode(&self.0)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replica_zero_is_primary() {
        let id = DataId::new("abc");
        assert_eq!(id.replica(0), id);
    }

    #[test]
    fn replicas_are_distinct() {
        let id = DataId::new("abc");
        let r1 = id.replica(1);
        let r2 = id.replica(2);
        assert_ne!(r1, r2);
        assert_ne!(r1, id);
        assert_ne!(r1.digest(), r2.digest());
    }

    #[test]
    fn display_utf8_and_binary() {
        assert_eq!(DataId::new("abc").to_string(), "abc");
        let bin = DataId::from_bytes(vec![0xff, 0xfe]);
        assert_eq!(bin.to_string(), "0xfffe");
    }

    #[test]
    fn from_conversions_agree() {
        let a: DataId = "k".into();
        let b: DataId = String::from("k").into();
        assert_eq!(a, b);
    }
}
