//! Minimal hex encoding/decoding helpers.

/// Encodes bytes as lowercase hex.
///
/// ```
/// assert_eq!(gred_hash::hex::encode(&[0xde, 0xad]), "dead");
/// ```
pub fn encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(char::from_digit((b >> 4) as u32, 16).expect("nibble < 16"));
        s.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble < 16"));
    }
    s
}

/// Decodes a hex string into bytes.
///
/// # Errors
///
/// Returns [`DecodeHexError`] if the input has odd length or contains a
/// non-hex character.
///
/// ```
/// assert_eq!(gred_hash::hex::decode("dead").unwrap(), vec![0xde, 0xad]);
/// assert!(gred_hash::hex::decode("xyz").is_err());
/// ```
pub fn decode(s: &str) -> Result<Vec<u8>, DecodeHexError> {
    if !s.len().is_multiple_of(2) {
        return Err(DecodeHexError::OddLength);
    }
    s.as_bytes()
        .chunks_exact(2)
        .map(|pair| {
            let hi = (pair[0] as char)
                .to_digit(16)
                .ok_or(DecodeHexError::InvalidChar(pair[0] as char))?;
            let lo = (pair[1] as char)
                .to_digit(16)
                .ok_or(DecodeHexError::InvalidChar(pair[1] as char))?;
            Ok(((hi << 4) | lo) as u8)
        })
        .collect()
}

/// Error returned by [`decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeHexError {
    /// The input string has an odd number of characters.
    OddLength,
    /// The input contains a character outside `[0-9a-fA-F]`.
    InvalidChar(char),
}

impl std::fmt::Display for DecodeHexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeHexError::OddLength => write!(f, "hex string has odd length"),
            DecodeHexError::InvalidChar(c) => write!(f, "invalid hex character {c:?}"),
        }
    }
}

impl std::error::Error for DecodeHexError {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip_simple() {
        assert_eq!(decode(&encode(&[1, 2, 255])).unwrap(), vec![1, 2, 255]);
    }

    #[test]
    fn decode_errors() {
        assert_eq!(decode("a"), Err(DecodeHexError::OddLength));
        assert_eq!(decode("zz"), Err(DecodeHexError::InvalidChar('z')));
    }

    #[test]
    fn decode_uppercase() {
        assert_eq!(decode("DEAD").unwrap(), vec![0xde, 0xad]);
    }

    #[test]
    fn empty() {
        assert_eq!(encode(&[]), "");
        assert_eq!(decode("").unwrap(), Vec::<u8>::new());
    }

    proptest! {
        #[test]
        fn prop_round_trip(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
            prop_assert_eq!(decode(&encode(&bytes)).unwrap(), bytes);
        }
    }
}
