//! The `H(d) mod s` server-selection rule (Section V-B of the paper).
//!
//! A switch that wins the greedy routing for a data item owns the item, and
//! picks which of its `s` directly-attached edge servers stores it by taking
//! the data's hash modulo `s`. Because SHA-256 output is uniform, the rule
//! balances load across the servers behind one switch.

use crate::DataId;

/// Selects the serial number (in `0..servers`) of the edge server that
/// stores `id`, among the `servers` servers attached to the owning switch.
///
/// # Panics
///
/// Panics if `servers == 0`; a switch participating in GRED placement always
/// has at least one attached edge server.
///
/// ```
/// use gred_hash::{DataId, select_server};
/// let s = select_server(&DataId::new("k"), 4);
/// assert!(s < 4);
/// // Deterministic:
/// assert_eq!(s, select_server(&DataId::new("k"), 4));
/// ```
pub fn select_server(id: &DataId, servers: usize) -> usize {
    assert!(servers > 0, "switch must have at least one edge server");
    (id.digest().head_u64() % servers as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_server_always_zero() {
        for i in 0..32 {
            assert_eq!(select_server(&DataId::new(format!("k{i}")), 1), 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one edge server")]
    fn zero_servers_panics() {
        select_server(&DataId::new("k"), 0);
    }

    /// Uniformity: 10_000 keys over 10 servers, each bucket should be near
    /// 1000. Bound of ±20% keeps the test deterministic yet meaningful.
    #[test]
    fn selection_is_balanced() {
        let servers = 10;
        let mut counts = vec![0u32; servers];
        for i in 0..10_000 {
            counts[select_server(&DataId::new(format!("balance-{i}")), servers)] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!((800..=1200).contains(&c), "server {s} got {c}");
        }
    }

    proptest! {
        #[test]
        fn prop_in_range(bytes in proptest::collection::vec(any::<u8>(), 0..32), servers in 1usize..64) {
            let s = select_server(&DataId::from_bytes(bytes), servers);
            prop_assert!(s < servers);
        }
    }
}
