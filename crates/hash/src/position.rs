//! Mapping data identifiers to positions in the virtual 2D unit square.
//!
//! Section III of the paper: the SHA-256 digest `H(d)` of a data identifier
//! `d` is reduced to the 2D virtual space by taking the last 8 bytes of the
//! digest, splitting them into two 4-byte big-endian integers `x` and `y`,
//! and normalizing each by `2^32 - 1` so the coordinates range over `[0, 1]`.

use crate::{DataId, Digest};

/// A position in the virtual unit square, `(x, y)` with both in `[0, 1]`.
pub type VirtualPoint = (f64, f64);

/// Normalizer: the largest value of a 4-byte unsigned integer.
const NORM: f64 = u32::MAX as f64;

/// Reduces a digest to its virtual-space position.
///
/// ```
/// use gred_hash::{sha256, position::digest_position};
/// let p = digest_position(&sha256::digest(b"abc"));
/// assert!((0.0..=1.0).contains(&p.0) && (0.0..=1.0).contains(&p.1));
/// ```
pub fn digest_position(digest: &Digest) -> VirtualPoint {
    let (x, y) = digest.tail_u32_pair();
    (f64::from(x) / NORM, f64::from(y) / NORM)
}

/// The virtual-space position of a data identifier: `digest_position(H(d))`.
///
/// ```
/// use gred_hash::{DataId, position::virtual_position};
/// let p = virtual_position(&DataId::new("k"));
/// let q = virtual_position(&DataId::new("k"));
/// assert_eq!(p, q); // deterministic
/// ```
pub fn virtual_position(id: &DataId) -> VirtualPoint {
    digest_position(&id.digest())
}

/// Positions of the primary and the first `copies - 1` replicas of `id`.
///
/// Replica `i` hashes `id # i` (Section VI), so replica positions are
/// independent uniform points in the unit square.
///
/// ```
/// use gred_hash::{DataId, position::replica_positions};
/// let ps = replica_positions(&DataId::new("k"), 3);
/// assert_eq!(ps.len(), 3);
/// ```
pub fn replica_positions(id: &DataId, copies: u32) -> Vec<VirtualPoint> {
    (0..copies)
        .map(|serial| virtual_position(&id.replica(serial)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn position_in_unit_square() {
        for i in 0..1000 {
            let (x, y) = virtual_position(&DataId::new(format!("key-{i}")));
            assert!((0.0..=1.0).contains(&x), "x={x}");
            assert!((0.0..=1.0).contains(&y), "y={y}");
        }
    }

    #[test]
    fn position_matches_manual_reduction() {
        let id = DataId::new("abc");
        let d = id.digest();
        let bytes = d.as_bytes();
        let x = u32::from_be_bytes(bytes[24..28].try_into().unwrap());
        let y = u32::from_be_bytes(bytes[28..32].try_into().unwrap());
        let p = virtual_position(&id);
        assert_eq!(p.0, f64::from(x) / f64::from(u32::MAX));
        assert_eq!(p.1, f64::from(y) / f64::from(u32::MAX));
    }

    /// The mapping should spread keys roughly uniformly: with 4000 keys and a
    /// 4x4 grid each cell expects 250; chi-square with 15 dof at p=0.001 is
    /// 37.7. Use a generous bound to keep the test deterministic and robust.
    #[test]
    fn positions_are_roughly_uniform() {
        let n = 4000;
        let mut cells = [0u32; 16];
        for i in 0..n {
            let (x, y) = virtual_position(&DataId::new(format!("uniform-{i}")));
            let cx = ((x * 4.0) as usize).min(3);
            let cy = ((y * 4.0) as usize).min(3);
            cells[cy * 4 + cx] += 1;
        }
        let expect = n as f64 / 16.0;
        let chi2: f64 = cells
            .iter()
            .map(|&c| {
                let d = f64::from(c) - expect;
                d * d / expect
            })
            .sum();
        assert!(chi2 < 60.0, "chi2={chi2}, cells={cells:?}");
    }

    #[test]
    fn replica_positions_distinct() {
        let ps = replica_positions(&DataId::new("k"), 4);
        for i in 0..ps.len() {
            for j in (i + 1)..ps.len() {
                assert_ne!(ps[i], ps[j]);
            }
        }
    }

    #[test]
    fn replica_primary_matches_plain_position() {
        let id = DataId::new("k");
        assert_eq!(replica_positions(&id, 2)[0], virtual_position(&id));
    }

    proptest! {
        #[test]
        fn prop_in_unit_square(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            let (x, y) = virtual_position(&DataId::from_bytes(bytes));
            prop_assert!((0.0..=1.0).contains(&x));
            prop_assert!((0.0..=1.0).contains(&y));
        }
    }
}
