//! SHA-256 implemented from scratch per FIPS 180-4.
//!
//! The paper adopts SHA-256 as the hash function that maps data identifiers
//! into the virtual space (Section III). We implement the full compression
//! function here rather than pulling in a cryptography crate; the
//! implementation is validated against the official NIST test vectors in the
//! unit tests below.

/// A 32-byte SHA-256 digest.
///
/// ```
/// use gred_hash::sha256;
/// let d = sha256::digest(b"abc");
/// assert_eq!(d.as_bytes().len(), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest([u8; 32]);

impl Digest {
    /// The raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Lowercase hex rendering of the digest.
    pub fn to_hex(&self) -> String {
        crate::hex::encode(&self.0)
    }

    /// The last eight bytes of the digest split into two big-endian `u32`s.
    ///
    /// This is the exact reduction the paper performs to obtain the 2D
    /// virtual-space coordinates of a data item.
    pub fn tail_u32_pair(&self) -> (u32, u32) {
        let x = u32::from_be_bytes([self.0[24], self.0[25], self.0[26], self.0[27]]);
        let y = u32::from_be_bytes([self.0[28], self.0[29], self.0[30], self.0[31]]);
        (x, y)
    }

    /// The first eight bytes of the digest as a big-endian `u64`.
    ///
    /// Used by the Chord baseline to derive ring identifiers and by the
    /// `H(d) mod s` server-selection rule.
    pub fn head_u64(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().expect("slice is 8 bytes"))
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Digest> for [u8; 32] {
    fn from(d: Digest) -> Self {
        d.0
    }
}

impl std::fmt::Display for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Round constants: first 32 bits of the fractional parts of the cube roots
/// of the first 64 primes (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash values: first 32 bits of the fractional parts of the square
/// roots of the first 8 primes (FIPS 180-4 §5.3.3).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// ```
/// use gred_hash::Sha256;
/// let mut h = Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(
///     h.finalize().to_hex(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Bytes buffered until a full 64-byte block is available.
    buf: [u8; 64],
    buf_len: usize,
    /// Total message length in bytes.
    total_len: u64,
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buf: [0; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let take = rest.len().min(64 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            self.compress(block.try_into().expect("block is 64 bytes"));
            rest = tail;
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Finishes the hash and returns the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, then the 64-bit big-endian bit length.
        self.update_padding_byte();
        while self.buf_len != 56 {
            self.update_zero_byte();
        }
        self.total_len = 0; // neutralize length tracking during padding
        let mut block = self.buf;
        block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    fn update_padding_byte(&mut self) {
        self.push_byte(0x80);
    }

    fn update_zero_byte(&mut self) {
        self.push_byte(0x00);
    }

    fn push_byte(&mut self, b: u8) {
        self.buf[self.buf_len] = b;
        self.buf_len += 1;
        if self.buf_len == 64 {
            let block = self.buf;
            self.compress(&block);
            self.buf_len = 0;
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("chunk is 4 bytes"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

impl Default for Sha256 {
    fn default() -> Self {
        Sha256::new()
    }
}

/// One-shot SHA-256 of `data`.
///
/// ```
/// use gred_hash::sha256;
/// assert_eq!(
///     sha256::digest(b"").to_hex(),
///     "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
/// );
/// ```
pub fn digest(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// NIST FIPS 180-4 / NESSIE test vectors.
    #[test]
    fn nist_vectors() {
        let cases: &[(&[u8], &str)] = &[
            (
                b"",
                "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
            ),
            (
                b"abc",
                "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
            ),
            (
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
            ),
            (
                b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
                "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1",
            ),
        ];
        for (input, expected) in cases {
            assert_eq!(&digest(input).to_hex(), expected, "input {input:?}");
        }
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            h.finalize().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot_at_block_boundaries() {
        // Cover lengths that straddle the 64-byte block and 56-byte padding
        // boundaries, where padding bugs hide.
        for len in [0usize, 1, 55, 56, 57, 63, 64, 65, 119, 120, 121, 128, 1000] {
            let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let one = digest(&data);
            let mut h = Sha256::new();
            for b in &data {
                h.update(std::slice::from_ref(b));
            }
            assert_eq!(h.finalize(), one, "len={len}");
        }
    }

    #[test]
    fn tail_and_head_extraction() {
        let d = digest(b"abc");
        let (x, y) = d.tail_u32_pair();
        let bytes = d.as_bytes();
        assert_eq!(x.to_be_bytes(), bytes[24..28]);
        assert_eq!(y.to_be_bytes(), bytes[28..32]);
        assert_eq!(d.head_u64().to_be_bytes(), bytes[..8]);
    }

    #[test]
    fn display_is_hex() {
        let d = digest(b"abc");
        assert_eq!(d.to_string(), d.to_hex());
    }

    proptest! {
        /// Splitting the input arbitrarily never changes the digest.
        #[test]
        fn prop_incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..512), split in 0usize..512) {
            let split = split.min(data.len());
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            prop_assert_eq!(h.finalize(), digest(&data));
        }

        /// Distinct single-byte extensions change the digest (trivial
        /// collision sanity check).
        #[test]
        fn prop_extension_changes_digest(data in proptest::collection::vec(any::<u8>(), 0..64), b in any::<u8>()) {
            let mut ext = data.clone();
            ext.push(b);
            prop_assert_ne!(digest(&ext), digest(&data));
        }
    }
}
