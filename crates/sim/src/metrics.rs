//! Evaluation metrics (paper Section VII-B).
//!
//! - **Routing stretch**: hop count of the selected route divided by the
//!   hop count of the shortest route between the same endpoints.
//! - **Load balance** (`max/avg`): items on the most loaded edge server
//!   divided by the average items per server; 1 is perfect.

/// A sample series with mean and the paper's 90% confidence interval.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSeries {
    samples: Vec<f64>,
}

impl MetricSeries {
    /// An empty series.
    pub fn new() -> Self {
        MetricSeries {
            samples: Vec::new(),
        }
    }

    /// Adds one sample.
    ///
    /// # Panics
    ///
    /// Panics if the sample is not finite.
    pub fn push(&mut self, sample: f64) {
        assert!(sample.is_finite(), "metric samples must be finite");
        self.samples.push(sample);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean of the samples (0 for an empty series).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Half-width of the 90% confidence interval of the mean.
    pub fn ci90(&self) -> f64 {
        ci90_half_width(&self.samples)
    }

    /// Maximum sample (0 for an empty series).
    pub fn max(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }

    /// The raw samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

impl Default for MetricSeries {
    fn default() -> Self {
        MetricSeries::new()
    }
}

impl FromIterator<f64> for MetricSeries {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = MetricSeries::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

impl Extend<f64> for MetricSeries {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

/// Half-width of a two-sided 90% confidence interval of the mean, using
/// the normal approximation (`z = 1.645`) the paper's error bars imply.
pub fn ci90_half_width(samples: &[f64]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
    1.645 * (var / n).sqrt()
}

/// The `max/avg` load-balance metric over per-server item counts. All
/// servers (including empty ones) belong in `loads`. Returns 0 when no
/// items are stored or `loads` is empty.
///
/// ```
/// assert_eq!(gred_sim::max_avg(&[2, 2, 2, 2]), 1.0);
/// assert_eq!(gred_sim::max_avg(&[8, 0, 0, 0]), 4.0);
/// ```
pub fn max_avg(loads: &[u64]) -> f64 {
    if loads.is_empty() {
        return 0.0;
    }
    let total: u64 = loads.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let max = *loads.iter().max().expect("nonempty") as f64;
    let avg = total as f64 / loads.len() as f64;
    max / avg
}

/// Routing stretch of one request: `actual_hops / shortest_hops`, with the
/// convention that a request answered at the access switch itself
/// (shortest = 0) has stretch 1.
pub fn stretch(actual_hops: u32, shortest_hops: u32) -> f64 {
    if shortest_hops == 0 {
        return 1.0;
    }
    f64::from(actual_hops) / f64::from(shortest_hops)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_statistics() {
        let s: MetricSeries = [1.0, 2.0, 3.0].into_iter().collect();
        assert_eq!(s.len(), 3);
        assert!((s.mean() - 2.0).abs() < 1e-12);
        assert_eq!(s.max(), 3.0);
        assert!(s.ci90() > 0.0);
    }

    #[test]
    fn empty_series() {
        let s = MetricSeries::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.ci90(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn extend_appends() {
        let mut s = MetricSeries::new();
        s.extend([1.0, 1.0]);
        assert_eq!(s.samples(), &[1.0, 1.0]);
        assert_eq!(s.ci90(), 0.0, "identical samples have zero CI");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_sample_panics() {
        MetricSeries::new().push(f64::NAN);
    }

    #[test]
    fn max_avg_cases() {
        assert_eq!(max_avg(&[]), 0.0);
        assert_eq!(max_avg(&[0, 0]), 0.0);
        assert_eq!(max_avg(&[5]), 1.0);
        assert_eq!(max_avg(&[3, 1]), 1.5);
        assert_eq!(max_avg(&[10, 0, 0, 0, 0]), 5.0);
    }

    #[test]
    fn stretch_cases() {
        assert_eq!(stretch(5, 5), 1.0);
        assert_eq!(stretch(10, 5), 2.0);
        assert_eq!(stretch(0, 0), 1.0);
        assert_eq!(stretch(3, 0), 1.0, "local answers have unit stretch");
    }

    #[test]
    fn ci90_known_value() {
        // Samples 1..=5: mean 3, sample variance 2.5, se = sqrt(0.5).
        let hw = ci90_half_width(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!((hw - 1.645 * (2.5f64 / 5.0).sqrt()).abs() < 1e-12);
        assert_eq!(ci90_half_width(&[1.0]), 0.0);
    }
}
