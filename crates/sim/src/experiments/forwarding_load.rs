//! Forwarding-load distribution (extension): which switches do the work?
//!
//! Storage load is one balance question; *forwarding* load is another —
//! greedy routes and virtual-link relays concentrate packet processing on
//! some switches. This experiment counts, per switch, how many packets it
//! processed (greedy decisions + relays, via the data plane's P4-style
//! counters) while serving a batch of random requests, and compares the
//! concentration against Chord's underlay usage.

use crate::metrics::max_avg;
use crate::systems::{ComparedSystem, SystemUnderTest};
use crate::workload::{AccessPicker, ItemGenerator};
use gred_chord::{ChordConfig, ChordNetwork};
use serde::Serialize;

/// One row of the forwarding-load experiment.
#[derive(Debug, Clone, Serialize)]
pub struct ForwardingLoadRow {
    /// System name.
    pub system: String,
    /// `max/avg` of per-switch packets processed.
    pub max_avg: f64,
    /// Total switch-visits across all requests (lower = less network
    /// work; proportional to aggregate bandwidth use).
    pub total_visits: u64,
}

/// Serves `requests` random retrievals on a fixed substrate and reports
/// per-switch forwarding-load concentration for GRED and Chord.
pub fn forwarding_load(switches: usize, requests: usize, seed: u64) -> Vec<ForwardingLoadRow> {
    let (topo, pool) = crate::experiments::substrate(switches, 10, 3, seed);
    let members: Vec<usize> = (0..switches).collect();
    let mut rows = Vec::new();

    // GRED: the data-plane counters record exactly who processed what.
    {
        let sut = SystemUnderTest::build(
            topo.clone(),
            pool.clone(),
            ComparedSystem::Gred { iterations: 50 },
            seed,
        );
        let net = sut.as_gred().expect("gred");
        let mut gen = ItemGenerator::new("fload-gred");
        let mut picker = AccessPicker::new(&members, seed);
        // Reused hop buffers: the per-request walk allocates nothing.
        let mut scratch = gred::plane::forwarding::RouteScratch::new();
        for _ in 0..requests {
            let id = gen.next_id();
            let pos = net.position_of_id(&id);
            let _ = gred::plane::forwarding::route_with(
                net.dataplanes(),
                picker.pick(),
                pos,
                &id,
                &mut scratch,
            )
            .expect("routes");
        }
        let counts: Vec<u64> = net
            .dataplanes()
            .iter()
            .map(|p| p.packets_processed())
            .collect();
        rows.push(ForwardingLoadRow {
            system: "GRED".into(),
            max_avg: max_avg(&counts),
            total_visits: counts.iter().sum(),
        });
    }

    // Chord: count switch visits along each overlay-expanded walk.
    {
        let chord = ChordNetwork::build(&pool, ChordConfig::default());
        let mut counts = vec![0u64; switches];
        let mut gen = ItemGenerator::new("fload-chord");
        let mut picker = AccessPicker::new(&members, seed);
        for _ in 0..requests {
            let id = gen.next_id();
            let access = picker.pick();
            let overlay = chord.lookup_path(access, &id);
            counts[access] += 1;
            for w in overlay.windows(2) {
                let seg = topo
                    .shortest_path(w[0].switch, w[1].switch)
                    .expect("connected");
                for &s in seg.iter().skip(1) {
                    counts[s] += 1;
                }
            }
        }
        rows.push(ForwardingLoadRow {
            system: "Chord".into(),
            max_avg: max_avg(&counts),
            total_visits: counts.iter().sum(),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gred_does_less_total_work() {
        let rows = forwarding_load(30, 500, 7);
        let gred = rows.iter().find(|r| r.system == "GRED").unwrap();
        let chord = rows.iter().find(|r| r.system == "Chord").unwrap();
        assert!(
            gred.total_visits * 2 < chord.total_visits,
            "GRED visits {} should be far below Chord's {}",
            gred.total_visits,
            chord.total_visits
        );
        assert!(gred.max_avg >= 1.0 && chord.max_avg >= 1.0);
    }

    #[test]
    fn counters_match_route_lengths() {
        // The P4 counters must equal the number of decisions + relays —
        // i.e. the switch-visit count of all routes.
        use crate::systems::SystemUnderTest;
        let (topo, pool) = crate::experiments::substrate(15, 4, 3, 9);
        let sut = SystemUnderTest::build(topo, pool, ComparedSystem::Gred { iterations: 10 }, 9);
        let net = sut.as_gred().unwrap();
        let mut expected = 0u64;
        for i in 0..50 {
            let id = gred_hash::DataId::new(format!("cnt/{i}"));
            let pos = net.position_of_id(&id);
            let route = gred::plane::forwarding::route(net.dataplanes(), i % 15, pos, &id).unwrap();
            // decide() runs at every overlay switch; relay_next at every
            // relay switch. Relay count = physical hops - overlay hops.
            expected += u64::from(route.overlay_hops()) + 1; // decisions
            expected += u64::from(route.physical_hops() - route.overlay_hops());
            // relays
        }
        let total: u64 = net.dataplanes().iter().map(|p| p.packets_processed()).sum();
        assert_eq!(total, expected);
    }
}
