//! Network-dynamics experiment (paper Section VI, beyond the figures):
//! how much data moves when an edge node joins or leaves.
//!
//! The paper's claim: "the new edge node has no effect on the other edge
//! nodes. It only affects its neighbors" — i.e. a join should migrate
//! roughly `1/(n+1)` of the keys (the newcomer's Voronoi cell) and leave
//! the rest untouched; a leave should move only the leaver's share.

use bytes::Bytes;
use gred::{GredConfig, GredNetwork};
use gred_hash::DataId;
use gred_net::{waxman_topology, ServerPool, WaxmanConfig};
use serde::Serialize;
use std::collections::HashMap;

/// Result of one churn event.
#[derive(Debug, Clone, Serialize)]
pub struct ChurnRow {
    /// Switches before the event.
    pub switches: usize,
    /// "join" or "leave".
    pub event: String,
    /// Fraction of stored items whose server changed.
    pub moved_fraction: f64,
    /// The ideal fraction (newcomer/leaver's fair share of the keys).
    pub fair_share: f64,
}

fn snapshot(net: &GredNetwork) -> HashMap<DataId, gred_net::ServerId> {
    net.store()
        .all_locations()
        .into_iter()
        .map(|(server, id)| (id, server))
        .collect()
}

fn moved_fraction(
    before: &HashMap<DataId, gred_net::ServerId>,
    after: &HashMap<DataId, gred_net::ServerId>,
) -> f64 {
    let moved = before
        .iter()
        .filter(|(id, server)| after.get(*id) != Some(server))
        .count();
    moved as f64 / before.len().max(1) as f64
}

/// Measures migration volume for a join followed by a leave, at each
/// network size.
pub fn churn_migration(sizes: &[usize], items: usize, seed: u64) -> Vec<ChurnRow> {
    let mut rows = Vec::new();
    for &n in sizes {
        let (topo, _) = waxman_topology(&WaxmanConfig::with_switches(n, seed ^ n as u64));
        let pool = ServerPool::uniform(n, 4, u64::MAX);
        let mut net =
            GredNetwork::build(topo, pool, GredConfig::default().seeded(seed)).expect("builds");
        for i in 0..items {
            net.place(&DataId::new(format!("churn/{n}/{i}")), Bytes::new(), i % n)
                .expect("places");
        }

        // Join.
        let before = snapshot(&net);
        let added = net
            .add_switch(&[0, n / 2], vec![u64::MAX; 4])
            .expect("join succeeds");
        let after = snapshot(&net);
        rows.push(ChurnRow {
            switches: n,
            event: "join".into(),
            moved_fraction: moved_fraction(&before, &after),
            fair_share: 1.0 / (n + 1) as f64,
        });

        // Leave (the same node departs again).
        let before = snapshot(&net);
        net.remove_switch(added).expect("leave succeeds");
        let after = snapshot(&net);
        rows.push(ChurnRow {
            switches: n,
            event: "leave".into(),
            moved_fraction: moved_fraction(&before, &after),
            fair_share: 1.0 / (n + 1) as f64,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_moves_roughly_fair_share() {
        let rows = churn_migration(&[20], 400, 3);
        let join = rows.iter().find(|r| r.event == "join").unwrap();
        // The newcomer's cell should attract a bounded multiple of its
        // fair share — far from a rehash-everything event.
        assert!(
            join.moved_fraction < 6.0 * join.fair_share,
            "join moved {:.1}% (fair share {:.1}%)",
            100.0 * join.moved_fraction,
            100.0 * join.fair_share
        );
    }

    #[test]
    fn leave_returns_the_same_keys() {
        let rows = churn_migration(&[15], 300, 5);
        let join = rows.iter().find(|r| r.event == "join").unwrap();
        let leave = rows.iter().find(|r| r.event == "leave").unwrap();
        // Leaving undoes the join: comparable volume in both directions.
        assert!(leave.moved_fraction <= join.moved_fraction + 0.05);
        assert!(leave.moved_fraction > 0.0 || join.moved_fraction == 0.0);
    }

    #[test]
    fn most_items_never_move() {
        for (i, row) in churn_migration(&[25], 500, 7).iter().enumerate() {
            assert!(
                row.moved_fraction < 0.5,
                "event {i} ({}) moved {:.0}% of items",
                row.event,
                100.0 * row.moved_fraction
            );
        }
    }
}

/// One row of the GRED-vs-Chord ownership-churn comparison.
#[derive(Debug, Clone, Serialize)]
pub struct OwnerChurnRow {
    /// Switches before the join.
    pub switches: usize,
    /// "GRED" or "Chord".
    pub system: String,
    /// Fraction of keys whose owner changed when one edge node joined.
    pub moved_fraction: f64,
    /// The joining node's fair share of the key space.
    pub fair_share: f64,
}

/// Compares ownership churn on a node join: GRED (one new DT site claims
/// its Voronoi cell) vs Chord (one new ring arc per virtual node). Both
/// are consistent-hashing designs, so both should move ≈ the fair share —
/// this experiment verifies GRED gives up nothing on churn for its
/// stretch and balance wins.
pub fn owner_churn_comparison(sizes: &[usize], keys: usize, seed: u64) -> Vec<OwnerChurnRow> {
    use gred_chord::{ChordConfig, ChordNetwork};
    use gred_net::waxman_topology as waxman;

    let mut rows = Vec::new();
    for &n in sizes {
        let servers_per_switch = 4;
        let ids: Vec<DataId> = (0..keys)
            .map(|i| DataId::new(format!("ochurn/{n}/{i}")))
            .collect();
        let fair_share = 1.0 / (n + 1) as f64;

        // GRED: add one switch, existing positions fixed.
        let (topo, _) = waxman(&gred_net::WaxmanConfig::with_switches(n, seed ^ n as u64));
        let pool = ServerPool::uniform(n, servers_per_switch, u64::MAX);
        let mut net =
            GredNetwork::build(topo, pool, GredConfig::default().seeded(seed)).expect("builds");
        let before: Vec<_> = ids.iter().map(|id| net.responsible_server(id)).collect();
        net.add_switch(&[0, n / 2], vec![u64::MAX; servers_per_switch])
            .expect("join succeeds");
        let moved = ids
            .iter()
            .zip(&before)
            .filter(|(id, &b)| net.responsible_server(id) != b)
            .count();
        rows.push(OwnerChurnRow {
            switches: n,
            system: "GRED".into(),
            moved_fraction: moved as f64 / keys as f64,
            fair_share,
        });

        // Chord: add one switch's worth of servers to the ring.
        let pool_before = ServerPool::uniform(n, servers_per_switch, u64::MAX);
        let pool_after = ServerPool::uniform(n + 1, servers_per_switch, u64::MAX);
        let chord_before = ChordNetwork::build(&pool_before, ChordConfig::default());
        let chord_after = ChordNetwork::build(&pool_after, ChordConfig::default());
        let moved = ids
            .iter()
            .filter(|id| chord_before.owner(id) != chord_after.owner(id))
            .count();
        rows.push(OwnerChurnRow {
            switches: n,
            system: "Chord".into(),
            moved_fraction: moved as f64 / keys as f64,
            fair_share,
        });
    }
    rows
}

#[cfg(test)]
mod owner_churn_tests {
    use super::*;

    #[test]
    fn both_systems_move_near_fair_share() {
        let rows = owner_churn_comparison(&[25], 4_000, 7);
        for r in &rows {
            assert!(
                r.moved_fraction < 5.0 * r.fair_share,
                "{}: moved {:.1}% vs fair share {:.1}%",
                r.system,
                100.0 * r.moved_fraction,
                100.0 * r.fair_share
            );
            assert!(
                r.moved_fraction > 0.0,
                "{}: a join must claim some keys",
                r.system
            );
        }
    }

    #[test]
    fn gred_churn_is_competitive_with_chord() {
        let rows = owner_churn_comparison(&[20], 4_000, 9);
        let gred = rows
            .iter()
            .find(|r| r.system == "GRED")
            .unwrap()
            .moved_fraction;
        let chord = rows
            .iter()
            .find(|r| r.system == "Chord")
            .unwrap()
            .moved_fraction;
        // GRED should not move an order of magnitude more than Chord.
        assert!(gred < chord * 8.0, "GRED {gred:.3} vs Chord {chord:.3}");
    }
}
