//! Control-plane update cost on dynamics (extension): how many
//! forwarding entries change when an edge node joins?
//!
//! The paper's Section VI claims a join "only affects its neighbors" —
//! the controller should touch a handful of switches, not reprogram the
//! network. We diff every switch's installed entries before and after a
//! join and count how many switches saw any change.

use crate::experiments::substrate;
use gred::{GredConfig, GredNetwork};
use gred_dataplane::SwitchDataplane;
use serde::Serialize;
use std::collections::BTreeSet;

/// One row of the control-overhead experiment.
#[derive(Debug, Clone, Serialize)]
pub struct ControlOverheadRow {
    /// Switches before the join.
    pub switches: usize,
    /// Switches whose forwarding state changed.
    pub switches_touched: usize,
    /// Net change in total installed entries.
    pub entry_delta: i64,
    /// Entries installed on the joining switch itself.
    pub newcomer_entries: usize,
}

/// A switch's installed state, as comparable sets.
fn snapshot(plane: &SwitchDataplane) -> (BTreeSet<String>, usize) {
    let neighbors: BTreeSet<String> = plane
        .neighbor_entries()
        .map(|e| format!("{}@{:?}via{}", e.neighbor, e.position, e.via))
        .collect();
    (neighbors, plane.entry_count())
}

/// Joins one switch at each network size and reports the controller's
/// update footprint.
pub fn join_overhead(sizes: &[usize], seed: u64) -> Vec<ControlOverheadRow> {
    sizes
        .iter()
        .map(|&n| {
            let (topo, pool) = substrate(n, 4, 3, seed ^ n as u64);
            let mut net =
                GredNetwork::build(topo, pool, GredConfig::default().seeded(seed)).expect("builds");
            let before: Vec<(BTreeSet<String>, usize)> =
                net.dataplanes().iter().map(snapshot).collect();
            let before_total: usize = net.dataplanes().iter().map(|p| p.entry_count()).sum();

            let new_switch = net
                .add_switch(&[0, n / 2], vec![u64::MAX; 4])
                .expect("joins");

            let mut touched = 0;
            for (s, old) in before.iter().enumerate() {
                if snapshot(&net.dataplanes()[s]) != *old {
                    touched += 1;
                }
            }
            let after_total: usize = net.dataplanes().iter().map(|p| p.entry_count()).sum();
            ControlOverheadRow {
                switches: n,
                switches_touched: touched,
                entry_delta: after_total as i64 - before_total as i64,
                newcomer_entries: net.dataplanes()[new_switch].entry_count(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_touches_a_minority_of_switches() {
        for row in join_overhead(&[30, 60], 5) {
            assert!(
                row.switches_touched * 2 < row.switches,
                "n={}: join touched {} of {} switches",
                row.switches,
                row.switches_touched,
                row.switches
            );
            assert!(
                row.newcomer_entries > 0,
                "newcomer needs forwarding entries"
            );
        }
    }

    #[test]
    fn entry_growth_is_local_not_global() {
        let rows = join_overhead(&[40], 9);
        let row = &rows[0];
        // The delta should be on the order of the newcomer's degree, not
        // the network size times average degree.
        assert!(
            row.entry_delta.unsigned_abs() < 40,
            "entry delta {} too large for one join",
            row.entry_delta
        );
    }
}
