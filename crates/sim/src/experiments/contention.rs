//! Link-contention experiment (extension): GRED vs Chord completion
//! times when many requests share the network at once.
//!
//! The paper's stretch metric counts hops; under load, hops also cost
//! *link occupancy*. Chord's overlay detours traverse ~4× the links per
//! request, so at equal request rates Chord both (a) takes longer per
//! request at baseline and (b) builds deeper link queues. This experiment
//! drives both systems' actual request paths through the discrete-event
//! link simulator ([`gred_net::events`]) and reports mean completion
//! time.

use crate::systems::{ComparedSystem, SystemUnderTest};
use crate::workload::{AccessPicker, ItemGenerator};
use gred_chord::ChordConfig;
use gred_chord::ChordNetwork;
use gred_net::{simulate_journeys, JourneySpec, LinkParams};
use serde::Serialize;

/// One plotted point of the contention experiment.
#[derive(Debug, Clone, Serialize)]
pub struct ContentionRow {
    /// Requests injected into the fixed arrival window.
    pub requests: usize,
    /// System name.
    pub system: String,
    /// Mean request completion time in microseconds.
    pub mean_completion_us: f64,
}

/// Gathers the physical switch path of one request under each system.
/// `scratch` holds the GRED walk's reused hop buffers; the returned path
/// is an exact-size copy of the switch list.
fn request_path(
    sut: &SystemUnderTest,
    chord: Option<&ChordNetwork>,
    id: &gred_hash::DataId,
    access: usize,
    scratch: &mut gred::plane::forwarding::RouteScratch,
) -> Vec<usize> {
    match (sut.as_gred(), chord) {
        (Some(net), _) => {
            let pos = net.position_of_id(id);
            gred::plane::forwarding::route_with(net.dataplanes(), access, pos, id, scratch)
                .expect("routes");
            scratch.switches().to_vec()
        }
        (None, Some(ring)) => {
            // Expand the overlay path into the physical switch walk.
            let overlay = ring.lookup_path(access, id);
            let mut path = Vec::new();
            for w in overlay.windows(2) {
                let seg = sut
                    .topology()
                    .shortest_path(w[0].switch, w[1].switch)
                    .expect("connected");
                if path.is_empty() {
                    path.extend(seg);
                } else {
                    path.extend(seg.into_iter().skip(1));
                }
            }
            if path.is_empty() {
                path.push(access);
            }
            path
        }
        _ => unreachable!("one of the two systems is always present"),
    }
}

/// Injects each batch size uniformly over `window_us` and simulates the
/// request paths through the link-level simulator.
pub fn contention_completion(
    request_counts: &[usize],
    window_us: f64,
    params: LinkParams,
    seed: u64,
) -> Vec<ContentionRow> {
    let (topo, pool) = crate::experiments::substrate(30, 10, 3, seed);
    let gred = SystemUnderTest::build(
        topo.clone(),
        pool.clone(),
        ComparedSystem::Gred { iterations: 50 },
        seed,
    );
    let chord_sut = SystemUnderTest::build(
        topo.clone(),
        pool.clone(),
        ComparedSystem::Chord { virtual_nodes: 1 },
        seed,
    );
    let chord_ring = ChordNetwork::build(&pool, ChordConfig::default());

    let mut rows = Vec::new();
    for &requests in request_counts {
        for (name, sut, ring) in [
            ("GRED", &gred, None),
            ("Chord", &chord_sut, Some(&chord_ring)),
        ] {
            let mut gen = ItemGenerator::new(format!("cont-{name}-{requests}"));
            let members: Vec<usize> = (0..30).collect();
            let mut picker = AccessPicker::new(&members, seed ^ requests as u64);
            let mut scratch = gred::plane::forwarding::RouteScratch::new();
            let specs: Vec<JourneySpec> = (0..requests)
                .map(|i| {
                    let id = gen.next_id();
                    let access = picker.pick();
                    JourneySpec {
                        start_us: window_us * (i as f64 / requests.max(1) as f64),
                        path: request_path(sut, ring, &id, access, &mut scratch),
                    }
                })
                .collect();
            let done = simulate_journeys(&specs, params);
            let mean: f64 = done
                .iter()
                .zip(&specs)
                .map(|(d, s)| d - s.start_us)
                .sum::<f64>()
                / requests.max(1) as f64;
            rows.push(ContentionRow {
                requests,
                system: name.to_string(),
                mean_completion_us: mean,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gred_completes_faster_under_load() {
        let rows = contention_completion(&[400], 1_000.0, LinkParams::default(), 11);
        let gred = rows.iter().find(|r| r.system == "GRED").unwrap();
        let chord = rows.iter().find(|r| r.system == "Chord").unwrap();
        assert!(
            gred.mean_completion_us < chord.mean_completion_us,
            "GRED {:.0}us must beat Chord {:.0}us under contention",
            gred.mean_completion_us,
            chord.mean_completion_us
        );
    }

    #[test]
    fn load_increases_completion_time() {
        let rows = contention_completion(&[50, 2000], 500.0, LinkParams::default(), 13);
        let at = |req: usize, name: &str| {
            rows.iter()
                .find(|r| r.requests == req && r.system == name)
                .unwrap()
                .mean_completion_us
        };
        assert!(
            at(2000, "Chord") > at(50, "Chord"),
            "packing 40x the requests into the window must queue"
        );
    }
}
