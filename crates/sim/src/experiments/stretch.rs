//! Routing-stretch experiments: Figs. 9(a), 9(b), 9(c).

use crate::experiments::substrate;
use crate::metrics::MetricSeries;
use crate::runner::{default_threads, parallel_map};
use crate::systems::{ComparedSystem, SystemUnderTest};
use crate::workload::{AccessPicker, ItemGenerator};
use serde::Serialize;

/// One plotted point of a stretch figure.
#[derive(Debug, Clone, Serialize)]
pub struct StretchRow {
    /// X-axis value (number of switches, or minimum degree).
    pub x: usize,
    /// System name ("Chord", "GRED(T=50)", "GRED-NoCVT", …).
    pub system: String,
    /// Mean routing stretch over the sampled requests.
    pub mean: f64,
    /// 90% confidence half-width (the paper's error bars).
    pub ci90: f64,
}

/// The three systems every stretch figure compares.
pub fn standard_systems() -> Vec<ComparedSystem> {
    vec![
        ComparedSystem::Chord { virtual_nodes: 1 },
        ComparedSystem::Gred { iterations: 50 },
        ComparedSystem::Gred { iterations: 0 },
    ]
}

fn measure_stretch(sut: &SystemUnderTest, items: usize, seed: u64) -> MetricSeries {
    let members: Vec<usize> = (0..sut.topology().switch_count()).collect();
    let mut gen = ItemGenerator::new(format!("stretch-{seed}"));
    let mut picker = AccessPicker::new(&members, seed);
    (0..items)
        .map(|_| sut.request_stretch(&gen.next_id(), picker.pick()))
        .collect()
}

/// Fig. 9(a): routing stretch vs number of switches (10 servers each,
/// min degree 3, `items` random data items with random access points per
/// setting).
pub fn stretch_vs_network_size(sizes: &[usize], items: usize, seed: u64) -> Vec<StretchRow> {
    parallel_map(sizes.to_vec(), default_threads(), |n| {
        let (topo, pool) = substrate(n, 10, 3, seed ^ n as u64);
        standard_systems()
            .into_iter()
            .map(|system| {
                let sut = SystemUnderTest::build(topo.clone(), pool.clone(), system, seed);
                let series = measure_stretch(&sut, items, seed);
                StretchRow {
                    x: n,
                    system: system.name(),
                    mean: series.mean(),
                    ci90: series.ci90(),
                }
            })
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Fig. 9(b): routing stretch vs minimum interconnection degree on a
/// 100-switch / 1000-server network.
pub fn stretch_vs_min_degree(
    degrees: &[usize],
    switches: usize,
    items: usize,
    seed: u64,
) -> Vec<StretchRow> {
    parallel_map(degrees.to_vec(), default_threads(), |d| {
        let (topo, pool) = substrate(switches, 10, d, seed ^ (d as u64) << 8);
        standard_systems()
            .into_iter()
            .map(|system| {
                let sut = SystemUnderTest::build(topo.clone(), pool.clone(), system, seed);
                let series = measure_stretch(&sut, items, seed);
                StretchRow {
                    x: d,
                    system: system.name(),
                    mean: series.mean(),
                    ci90: series.ci90(),
                }
            })
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Fig. 9(c): GRED vs extended-GRED (data placed at a server connected to
/// a *neighbor* switch of the destination switch) vs Chord.
///
/// Extended-GRED requests travel the normal greedy route plus one link to
/// the takeover switch, and are judged against the shortest path from the
/// access switch to that takeover switch.
pub fn stretch_with_extension(sizes: &[usize], items: usize, seed: u64) -> Vec<StretchRow> {
    let mut rows = Vec::new();
    for &n in sizes {
        let (topo, pool) = substrate(n, 10, 3, seed ^ n as u64);
        let members: Vec<usize> = (0..n).collect();

        // Plain GRED and Chord baselines.
        for system in [
            ComparedSystem::Chord { virtual_nodes: 1 },
            ComparedSystem::Gred { iterations: 50 },
        ] {
            let sut = SystemUnderTest::build(topo.clone(), pool.clone(), system, seed);
            let series = measure_stretch(&sut, items, seed);
            rows.push(StretchRow {
                x: n,
                system: system.name(),
                mean: series.mean(),
                ci90: series.ci90(),
            });
        }

        // Extended-GRED: every placement redirected one hop past the
        // destination switch.
        let sut = SystemUnderTest::build(
            topo.clone(),
            pool.clone(),
            ComparedSystem::Gred { iterations: 50 },
            seed,
        );
        let net = sut.as_gred().expect("gred variant");
        let mut gen = ItemGenerator::new(format!("ext-{seed}"));
        let mut picker = AccessPicker::new(&members, seed);
        let mut series = MetricSeries::new();
        for _ in 0..items {
            let id = gen.next_id();
            let access = picker.pick();
            let pos = net.position_of_id(&id);
            let route = gred::plane::forwarding::route(net.dataplanes(), access, pos, &id)
                .expect("routing succeeds");
            // Takeover switch: the destination's first physical neighbor
            // (the controller would pick the least-loaded one; any
            // neighbor is one link away, which is what stretch measures).
            let takeover = topo
                .neighbors(route.dest)
                .next()
                .expect("min-degree-3 switches have neighbors");
            let actual = route.physical_hops() + 1;
            let shortest = topo
                .shortest_path(access, takeover)
                .expect("connected")
                .len() as u32
                - 1;
            series.push(crate::metrics::stretch(actual, shortest));
        }
        rows.push(StretchRow {
            x: n,
            system: "extended-GRED".to_string(),
            mean: series.mean(),
            ci90: series.ci90(),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9a_shape_holds_at_small_scale() {
        let rows = stretch_vs_network_size(&[20, 40], 30, 7);
        assert_eq!(rows.len(), 6);
        for n in [20usize, 40] {
            let get = |name: &str| {
                rows.iter()
                    .find(|r| r.x == n && r.system == name)
                    .unwrap_or_else(|| panic!("missing {name} at {n}"))
                    .mean
            };
            let chord = get("Chord");
            let gred = get("GRED(T=50)");
            let nocvt = get("GRED-NoCVT");
            assert!(gred < chord, "n={n}: GRED {gred:.2} !< Chord {chord:.2}");
            assert!(nocvt < chord, "n={n}: NoCVT {nocvt:.2} !< Chord {chord:.2}");
            assert!(gred < 2.5, "n={n}: GRED stretch too high: {gred:.2}");
        }
    }

    #[test]
    fn fig9b_gred_beats_chord_across_degrees() {
        let rows = stretch_vs_min_degree(&[3, 6], 30, 20, 11);
        for d in [3usize, 6] {
            let chord = rows
                .iter()
                .find(|r| r.x == d && r.system == "Chord")
                .unwrap()
                .mean;
            let gred = rows
                .iter()
                .find(|r| r.x == d && r.system == "GRED(T=50)")
                .unwrap()
                .mean;
            assert!(gred < chord, "degree {d}");
        }
    }

    #[test]
    fn fig9c_extension_costs_little() {
        let rows = stretch_with_extension(&[25], 30, 13);
        let gred = rows.iter().find(|r| r.system == "GRED(T=50)").unwrap().mean;
        let ext = rows
            .iter()
            .find(|r| r.system == "extended-GRED")
            .unwrap()
            .mean;
        let chord = rows.iter().find(|r| r.system == "Chord").unwrap().mean;
        assert!(
            ext >= gred * 0.8,
            "extension should not reduce stretch much"
        );
        assert!(ext < chord, "extended-GRED must still beat Chord");
    }
}
