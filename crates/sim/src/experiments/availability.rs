//! Fault-tolerance experiment (extension of paper Section VI): data
//! availability under edge-node crashes, with and without replication.
//!
//! "The data copies are fundamental for the fault tolerance." This
//! experiment quantifies it: place items with `k` copies, crash `f`
//! random storage switches (their data is lost, unlike a graceful
//! leave), and measure the fraction of items still retrievable via
//! nearest-copy retrieval.

use bytes::Bytes;
use gred::{GredConfig, GredError, GredNetwork};
use gred_hash::DataId;
use gred_net::{waxman_topology, ServerPool, WaxmanConfig};
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, SeedableRng};
use serde::Serialize;

/// One availability measurement.
#[derive(Debug, Clone, Serialize)]
pub struct AvailabilityRow {
    /// Copies per item.
    pub replicas: u32,
    /// Storage switches crashed.
    pub failures: usize,
    /// Fraction of items still retrievable.
    pub availability: f64,
}

/// Crashes `failures` random switches under each replication factor in
/// `replica_counts` and reports surviving availability.
pub fn availability_under_crashes(
    replica_counts: &[u32],
    failures: usize,
    switches: usize,
    items: usize,
    seed: u64,
) -> Vec<AvailabilityRow> {
    replica_counts
        .iter()
        .map(|&replicas| {
            let (topo, _) = waxman_topology(&WaxmanConfig::with_switches(switches, seed));
            let pool = ServerPool::uniform(switches, 3, u64::MAX);
            let mut net =
                GredNetwork::build(topo, pool, GredConfig::default().seeded(seed)).expect("builds");

            let ids: Vec<DataId> = (0..items)
                .map(|i| DataId::new(format!("avail/{replicas}/{i}")))
                .collect();
            for (i, id) in ids.iter().enumerate() {
                net.place_replicated(id, Bytes::from_static(b"v"), replicas, i % switches)
                    .expect("places");
            }

            // Crash f random storage switches (keeping the network
            // connected — crashes that would disconnect it are skipped,
            // as the metric is about data loss, not partitions).
            let mut rng = StdRng::seed_from_u64(seed ^ u64::from(replicas));
            let mut candidates: Vec<usize> = net.members().to_vec();
            candidates.shuffle(&mut rng);
            let mut crashed = 0;
            for victim in candidates {
                if crashed == failures || net.members().len() <= 2 {
                    break;
                }
                match net.crash_switch(victim) {
                    Ok(()) => crashed += 1,
                    Err(GredError::Disconnected) => continue,
                    Err(e) => panic!("unexpected crash error: {e}"),
                }
            }

            let access = net.members()[0];
            let alive = ids
                .iter()
                .filter(|id| net.retrieve_nearest(id, replicas, access).is_ok())
                .count();
            AvailabilityRow {
                replicas,
                failures: crashed,
                availability: alive as f64 / items as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replication_improves_availability() {
        let rows = availability_under_crashes(&[1, 3], 4, 20, 150, 3);
        let single = rows.iter().find(|r| r.replicas == 1).unwrap();
        let triple = rows.iter().find(|r| r.replicas == 3).unwrap();
        assert!(
            triple.availability >= single.availability,
            "3 copies ({:.2}) must not lose to 1 copy ({:.2})",
            triple.availability,
            single.availability
        );
        assert!(
            triple.availability > 0.95,
            "3 copies across 20 switches should survive 4 crashes: {:.2}",
            triple.availability
        );
        assert!(
            single.availability < 1.0,
            "crashing 4 of 20 switches must lose some single-copy items"
        );
    }

    #[test]
    fn no_failures_full_availability() {
        let rows = availability_under_crashes(&[1], 0, 12, 100, 4);
        assert_eq!(rows[0].availability, 1.0);
        assert_eq!(rows[0].failures, 0);
    }
}
