//! Heterogeneous server counts (extension): the scenario that motivates
//! range extension.
//!
//! The paper notes "switches could connect to different numbers of edge
//! servers or servers with different capacity" (Section VII-B). GRED's
//! C-regulation equalizes *per-switch* key share; a switch with one
//! server then concentrates its whole share on that server, while Chord
//! (which rings individual servers) splits load per server naturally.
//! This experiment measures that effect and how much of it range
//! extension claws back.

use crate::metrics::max_avg;
use crate::workload::ItemGenerator;
use bytes::Bytes;
use gred::{GredConfig, GredError, GredNetwork};
use gred_chord::{ChordConfig, ChordNetwork};
use gred_net::{waxman_topology, ServerId, ServerPool, WaxmanConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::collections::HashMap;

/// One row of the heterogeneity experiment.
#[derive(Debug, Clone, Serialize)]
pub struct HeterogeneityRow {
    /// System / configuration name.
    pub system: String,
    /// Per-server `max/avg` item load.
    pub max_avg: f64,
}

/// Builds a pool with per-switch server counts uniform in
/// `1..=max_servers` and per-server capacity `capacity`.
fn heterogeneous_pool(switches: usize, max_servers: usize, capacity: u64, seed: u64) -> ServerPool {
    let mut rng = StdRng::seed_from_u64(seed);
    ServerPool::from_capacities(
        (0..switches)
            .map(|_| vec![capacity; rng.gen_range(1..=max_servers)])
            .collect(),
    )
}

/// Places `items` under three configurations on the same heterogeneous
/// substrate: GRED without extensions (unbounded capacity), GRED with
/// auto-extension under a per-server cap, and Chord.
pub fn heterogeneous_load(switches: usize, items: usize, seed: u64) -> Vec<HeterogeneityRow> {
    let (topo, _) = waxman_topology(&WaxmanConfig::with_switches(switches, seed));
    let mut rows = Vec::new();

    // GRED, no capacity pressure: per-switch shares concentrate on
    // small-server switches.
    {
        let pool = heterogeneous_pool(switches, 10, u64::MAX, seed ^ 1);
        let net = GredNetwork::build(
            topo.clone(),
            pool.clone(),
            GredConfig::default().seeded(seed),
        )
        .expect("builds");
        let mut gen = ItemGenerator::new("het-gred");
        let mut counts: HashMap<ServerId, u64> = HashMap::new();
        for _ in 0..items {
            *counts
                .entry(net.responsible_server(&gen.next_id()))
                .or_default() += 1;
        }
        let mut loads: Vec<u64> = pool
            .iter_ids()
            .map(|s| counts.get(&s).copied().unwrap_or(0))
            .collect();
        loads.sort_unstable();
        rows.push(HeterogeneityRow {
            system: "GRED (no extension)".into(),
            max_avg: max_avg(&loads),
        });
    }

    // GRED with capacity-driven auto-extension: overloads spill to
    // neighbor switches' servers.
    {
        let fair = (items / (switches * 5)).max(1) as u64; // ≈ avg per server
        let cap = fair * 2; // extend once a server holds 2x its fair share
        let pool = heterogeneous_pool(switches, 10, cap, seed ^ 1);
        let mut net = GredNetwork::build(
            topo.clone(),
            pool.clone(),
            GredConfig::default().seeded(seed),
        )
        .expect("builds");
        let mut gen = ItemGenerator::new("het-gred-ext");
        let mut stored = 0u64;
        for i in 0..items {
            match net.place(&gen.next_id(), Bytes::new(), i % switches) {
                Ok(_) => stored += 1,
                Err(GredError::CapacityExceeded { .. })
                | Err(GredError::NoExtensionCandidate { .. })
                | Err(GredError::AlreadyExtended { .. }) => {}
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        let loads: Vec<u64> = net.server_loads().iter().map(|&(_, l)| l).collect();
        let _ = stored;
        rows.push(HeterogeneityRow {
            system: "GRED (auto-extension)".into(),
            max_avg: max_avg(&loads),
        });
    }

    // Chord: every server is its own ring node regardless of its switch.
    {
        let pool = heterogeneous_pool(switches, 10, u64::MAX, seed ^ 1);
        let chord = ChordNetwork::build(&pool, ChordConfig::default());
        let mut gen = ItemGenerator::new("het-chord");
        let mut counts: HashMap<ServerId, u64> = HashMap::new();
        for _ in 0..items {
            *counts.entry(chord.owner(&gen.next_id())).or_default() += 1;
        }
        let loads: Vec<u64> = pool
            .iter_ids()
            .map(|s| counts.get(&s).copied().unwrap_or(0))
            .collect();
        rows.push(HeterogeneityRow {
            system: "Chord".into(),
            max_avg: max_avg(&loads),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heterogeneity_hurts_plain_gred_and_extension_helps() {
        let rows = heterogeneous_load(20, 20_000, 7);
        let get = |name: &str| {
            rows.iter()
                .find(|r| r.system.starts_with(name))
                .unwrap_or_else(|| panic!("missing {name}"))
                .max_avg
        };
        let plain = get("GRED (no extension)");
        let extended = get("GRED (auto-extension)");
        assert!(
            extended < plain,
            "auto-extension should improve heterogeneous balance: {extended:.2} vs {plain:.2}"
        );
        // Everything stays in a sane band.
        for r in &rows {
            assert!(r.max_avg >= 1.0, "{}: {}", r.system, r.max_avg);
            assert!(r.max_avg < 50.0, "{}: {}", r.system, r.max_avg);
        }
    }

    #[test]
    fn pool_generation_is_heterogeneous_and_deterministic() {
        let a = heterogeneous_pool(10, 10, 5, 3);
        let b = heterogeneous_pool(10, 10, 5, 3);
        for s in 0..10 {
            assert_eq!(a.servers_at(s), b.servers_at(s));
        }
        let counts: Vec<usize> = (0..10).map(|s| a.servers_at(s)).collect();
        assert!(counts.iter().any(|&c| c != counts[0]), "{counts:?}");
    }
}
