//! Prototype-testbed experiments: Figs. 7(a) and 7(b).
//!
//! The paper's 6-switch / 12-server P4 testbed shows (a) both GRED
//! variants route with stretch ≈ 1, and (b) C-regulation visibly improves
//! `max/avg` over GRED-NoCVT.

use crate::metrics::{max_avg, MetricSeries};
use crate::systems::{ComparedSystem, SystemUnderTest};
use crate::workload::{AccessPicker, ItemGenerator};
use gred_net::testbed_topology;
use gred_net::ServerId;
use serde::Serialize;
use std::collections::HashMap;

/// One bar of Fig. 7(a) / 7(b).
#[derive(Debug, Clone, Serialize)]
pub struct TestbedRow {
    /// "GRED" or "GRED-NoCVT".
    pub system: String,
    /// Mean routing stretch (Fig. 7a).
    pub stretch: f64,
    /// `max/avg` over the 12 servers (Fig. 7b).
    pub max_avg: f64,
}

/// The two systems the prototype compares (T = 50 per the paper).
fn prototype_systems() -> [(ComparedSystem, &'static str); 2] {
    [
        (ComparedSystem::Gred { iterations: 50 }, "GRED"),
        (ComparedSystem::Gred { iterations: 0 }, "GRED-NoCVT"),
    ]
}

/// Runs both testbed experiments: `requests` routed placements for the
/// stretch column, `items` hashed placements for the load column.
pub fn testbed_experiment(requests: usize, items: usize, seed: u64) -> Vec<TestbedRow> {
    let (topo, pool) = testbed_topology();
    prototype_systems()
        .into_iter()
        .map(|(system, name)| {
            let sut = SystemUnderTest::build(topo.clone(), pool.clone(), system, seed);

            let members: Vec<usize> = (0..topo.switch_count()).collect();
            let mut gen = ItemGenerator::new(format!("tb-{name}"));
            let mut picker = AccessPicker::new(&members, seed);
            let stretch: MetricSeries = (0..requests)
                .map(|_| sut.request_stretch(&gen.next_id(), picker.pick()))
                .collect();

            let mut loads: HashMap<ServerId, u64> = HashMap::new();
            let mut gen = ItemGenerator::new(format!("tb-load-{name}"));
            for _ in 0..items {
                *loads.entry(sut.owner_server(&gen.next_id())).or_default() += 1;
            }
            let mut counts: Vec<u64> = loads.into_values().collect();
            counts.resize(pool.total_servers().max(counts.len()), 0);

            TestbedRow {
                system: name.to_string(),
                stretch: stretch.mean(),
                max_avg: max_avg(&counts),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7a_stretch_near_one() {
        let rows = testbed_experiment(100, 2_000, 1);
        for r in &rows {
            assert!(
                r.stretch < 1.6,
                "{}: testbed stretch should be near 1, got {:.2}",
                r.system,
                r.stretch
            );
            assert!(r.stretch >= 1.0);
        }
    }

    #[test]
    fn fig7b_cvt_improves_balance() {
        let rows = testbed_experiment(10, 5_000, 2);
        let gred = rows.iter().find(|r| r.system == "GRED").unwrap().max_avg;
        let nocvt = rows
            .iter()
            .find(|r| r.system == "GRED-NoCVT")
            .unwrap()
            .max_avg;
        assert!(
            gred <= nocvt,
            "CVT should improve testbed balance: GRED {gred:.2} vs NoCVT {nocvt:.2}"
        );
    }
}
