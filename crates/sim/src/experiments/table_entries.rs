//! Forwarding-table occupancy: Fig. 9(d).
//!
//! GRED's scalability claim: the number of forwarding entries per switch
//! depends on the DT degree (≈ 6 on average) plus relay tuples, not on
//! the number of flows or the network size — the growth with network size
//! is modest.

use crate::experiments::substrate;
use crate::systems::{ComparedSystem, SystemUnderTest};
use serde::Serialize;

/// One plotted point of Fig. 9(d).
#[derive(Debug, Clone, Serialize)]
pub struct TableEntriesRow {
    /// Number of switches.
    pub switches: usize,
    /// Mean forwarding entries per switch.
    pub mean: f64,
    /// 90% confidence half-width over switches.
    pub ci90: f64,
    /// Fewest entries on any switch.
    pub min: usize,
    /// Most entries on any switch.
    pub max: usize,
}

/// Measures average per-switch forwarding-table occupancy for GRED
/// (T = 50) across network sizes.
pub fn entries_vs_network_size(sizes: &[usize], seed: u64) -> Vec<TableEntriesRow> {
    sizes
        .iter()
        .map(|&n| {
            let (topo, pool) = substrate(n, 10, 3, seed ^ n as u64);
            let sut =
                SystemUnderTest::build(topo, pool, ComparedSystem::Gred { iterations: 50 }, seed);
            let stats = sut.as_gred().expect("gred").table_stats();
            TableEntriesRow {
                switches: n,
                mean: stats.mean,
                ci90: stats.ci90_half_width,
                min: stats.min,
                max: stats.max,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn growth_is_modest() {
        let rows = entries_vs_network_size(&[20, 80], 3);
        assert_eq!(rows.len(), 2);
        let small = rows[0].mean;
        let large = rows[1].mean;
        assert!(small > 0.0);
        // 4x the switches must yield far less than 4x the entries.
        assert!(
            large < small * 3.0,
            "entries grew too fast: {small:.1} -> {large:.1}"
        );
    }

    #[test]
    fn per_switch_entries_are_bounded_by_graph_degree_scale() {
        let rows = entries_vs_network_size(&[50], 5);
        // DT average degree < 6 plus physical neighbors and relay tuples:
        // the mean should stay in the low tens, far below n.
        assert!(rows[0].mean < 50.0 / 2.0, "mean {}", rows[0].mean);
        assert!(rows[0].min <= rows[0].max);
    }
}
