//! Embedding-quality ablation (DESIGN.md Section 5): how much of GRED's
//! stretch comes from the M-position embedding vs the greedy routing
//! itself?
//!
//! We compare three coordinate sources over the same Waxman topology:
//!
//! 1. **M-position** (the paper): MDS over the hop matrix,
//! 2. **oracle**: the topology generator's true plane coordinates (the
//!    Waxman model links near nodes, so these are near-ideal greedy
//!    coordinates),
//! 3. **random**: uniform random positions (a lower bound showing what
//!    happens without any embedding).
//!
//! The DT guarantees delivery under all three — only the path quality
//! changes — which cleanly separates the embedding's contribution.

use crate::metrics::MetricSeries;
use crate::workload::{AccessPicker, ItemGenerator};
use gred::{GredConfig, GredNetwork};
use gred_geometry::Point2;
use gred_net::{waxman_topology, ServerPool, WaxmanConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// One row of the embedding ablation.
#[derive(Debug, Clone, Serialize)]
pub struct EmbeddingRow {
    /// Number of switches.
    pub switches: usize,
    /// Coordinate source ("m-position", "oracle", "random").
    pub source: String,
    /// Mean routing stretch.
    pub mean: f64,
    /// 90% confidence half-width.
    pub ci90: f64,
}

fn measure(net: &GredNetwork, items: usize, seed: u64) -> MetricSeries {
    let members = net.members().to_vec();
    let mut gen = ItemGenerator::new(format!("emb-{seed}"));
    let mut picker = AccessPicker::new(&members, seed);
    (0..items)
        .map(|_| {
            let id = gen.next_id();
            let access = picker.pick();
            let pos = net.position_of_id(&id);
            let route =
                gred::plane::forwarding::route(net.dataplanes(), access, pos, &id).expect("routes");
            let shortest = net
                .topology()
                .shortest_path(access, route.dest)
                .expect("connected")
                .len() as u32
                - 1;
            crate::metrics::stretch(route.physical_hops(), shortest)
        })
        .collect()
}

/// Runs the ablation at each network size. C-regulation is disabled for
/// all three sources so only the raw coordinates differ.
pub fn embedding_ablation(sizes: &[usize], items: usize, seed: u64) -> Vec<EmbeddingRow> {
    let mut rows = Vec::new();
    for &n in sizes {
        let (topo, coords) = waxman_topology(&WaxmanConfig::with_switches(n, seed ^ n as u64));
        let pool = ServerPool::uniform(n, 4, u64::MAX);
        let config = GredConfig::no_cvt().seeded(seed);

        let m_position =
            GredNetwork::build(topo.clone(), pool.clone(), config.clone()).expect("builds");

        let oracle_positions: Vec<Point2> = coords
            .iter()
            .map(|&(x, y)| Point2::new(x.clamp(0.01, 0.99), y.clamp(0.01, 0.99)))
            .collect();
        let oracle = GredNetwork::build_with_positions(
            topo.clone(),
            pool.clone(),
            &oracle_positions,
            config.clone(),
        )
        .expect("builds");

        let mut rng = StdRng::seed_from_u64(seed);
        let random_positions: Vec<Point2> = (0..n)
            .map(|_| Point2::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)))
            .collect();
        let random = GredNetwork::build_with_positions(topo, pool, &random_positions, config)
            .expect("builds");

        for (net, source) in [
            (&m_position, "m-position"),
            (&oracle, "oracle"),
            (&random, "random"),
        ] {
            let series = measure(net, items, seed);
            rows.push(EmbeddingRow {
                switches: n,
                source: source.to_string(),
                mean: series.mean(),
                ci90: series.ci90(),
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embedding_beats_random_and_tracks_oracle() {
        let rows = embedding_ablation(&[40], 40, 9);
        let get = |s: &str| rows.iter().find(|r| r.source == s).unwrap().mean;
        let m = get("m-position");
        let oracle = get("oracle");
        let random = get("random");
        assert!(
            m < random,
            "M-position ({m:.2}) must beat random coordinates ({random:.2})"
        );
        // The embedding should recover most of the oracle's quality.
        assert!(
            m < oracle * 2.0,
            "M-position ({m:.2}) should be within 2x of the oracle ({oracle:.2})"
        );
    }

    #[test]
    fn all_sources_deliver() {
        // Delivery (hence a finite stretch) holds for every source — the
        // DT guarantee is coordinate-agnostic.
        for row in embedding_ablation(&[20], 25, 11) {
            assert!(row.mean >= 1.0);
            assert!(row.mean.is_finite());
        }
    }
}
