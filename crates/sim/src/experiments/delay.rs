//! Response-delay experiment: Fig. 8.
//!
//! The paper pre-places data on the testbed, issues batches of retrieval
//! requests, and reports the average response delay — which stays flat as
//! the number of requests grows and is similar for both GRED variants,
//! because delay is a function of path length (stretch ≈ 1 for both), not
//! of request volume.

use crate::systems::{ComparedSystem, SystemUnderTest};
use crate::workload::{AccessPicker, ItemGenerator};
use gred_net::{testbed_topology, LatencyModel};
use serde::Serialize;

/// One plotted point of Fig. 8.
#[derive(Debug, Clone, Serialize)]
pub struct DelayRow {
    /// Number of retrieval requests issued.
    pub requests: usize,
    /// "GRED" or "GRED-NoCVT".
    pub system: String,
    /// Average response delay in microseconds.
    pub avg_delay_us: f64,
}

/// Issues each batch size in `request_counts` against a pre-loaded
/// testbed and reports mean round-trip delay under `latency`.
pub fn response_delay(request_counts: &[usize], latency: LatencyModel, seed: u64) -> Vec<DelayRow> {
    let (topo, pool) = testbed_topology();
    let mut rows = Vec::new();
    for (system, name) in [
        (ComparedSystem::Gred { iterations: 50 }, "GRED"),
        (ComparedSystem::Gred { iterations: 0 }, "GRED-NoCVT"),
    ] {
        let sut = SystemUnderTest::build(topo.clone(), pool.clone(), system, seed);
        let members: Vec<usize> = (0..topo.switch_count()).collect();
        for &requests in request_counts {
            let mut gen = ItemGenerator::new(format!("delay-{name}-{requests}"));
            let mut picker = AccessPicker::new(&members, seed ^ requests as u64);
            let mut total = 0.0;
            for _ in 0..requests {
                let id = gen.next_id();
                let access = picker.pick();
                let (actual, shortest) = sut.request_hops(&id, access);
                // Request travels the greedy route; the response returns
                // on the shortest path from the owner.
                total += latency.round_trip_us(actual, shortest);
            }
            rows.push(DelayRow {
                requests,
                system: name.to_string(),
                avg_delay_us: total / requests.max(1) as f64,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_delay_is_flat_and_similar() {
        let rows = response_delay(&[100, 400, 1000], LatencyModel::default(), 3);
        assert_eq!(rows.len(), 6);
        // Flat: max/min over batch sizes within 15% for each system.
        for name in ["GRED", "GRED-NoCVT"] {
            let delays: Vec<f64> = rows
                .iter()
                .filter(|r| r.system == name)
                .map(|r| r.avg_delay_us)
                .collect();
            let lo = delays.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = delays.iter().cloned().fold(0.0, f64::max);
            assert!(hi / lo < 1.15, "{name}: delay not flat: {delays:?}");
        }
        // Similar across variants at the same batch size.
        let g = rows
            .iter()
            .find(|r| r.system == "GRED" && r.requests == 400)
            .unwrap()
            .avg_delay_us;
        let n = rows
            .iter()
            .find(|r| r.system == "GRED-NoCVT" && r.requests == 400)
            .unwrap()
            .avg_delay_us;
        assert!(
            (g / n - 1.0).abs() < 0.4,
            "variants differ too much: {g} vs {n}"
        );
    }

    #[test]
    fn delay_scales_with_latency_model() {
        let slow = LatencyModel {
            per_hop_us: 500.0,
            service_us: 200.0,
        };
        let fast = LatencyModel {
            per_hop_us: 5.0,
            service_us: 200.0,
        };
        let s = response_delay(&[200], slow, 1);
        let f = response_delay(&[200], fast, 1);
        assert!(s[0].avg_delay_us > f[0].avg_delay_us);
    }
}

/// Fig. 8 under server queueing: the same experiment, but requests in a
/// batch arrive uniformly over `window_us` and queue FIFO at their
/// servers. At the paper's request volumes delay stays flat (the servers
/// are unsaturated); pushing the batch far beyond the window's service
/// capacity makes queueing visible — the regime the paper's "modest
/// change" hints at.
pub fn response_delay_with_queueing(
    request_counts: &[usize],
    latency: LatencyModel,
    window_us: f64,
    seed: u64,
) -> Vec<DelayRow> {
    use crate::queueing::{fifo_delays, QueuedRequest};

    let (topo, pool) = testbed_topology_with_pool();
    let mut rows = Vec::new();
    for (system, name) in [
        (ComparedSystem::Gred { iterations: 50 }, "GRED"),
        (ComparedSystem::Gred { iterations: 0 }, "GRED-NoCVT"),
    ] {
        let sut = SystemUnderTest::build(topo.clone(), pool.clone(), system, seed);
        let members: Vec<usize> = (0..topo.switch_count()).collect();
        for &requests in request_counts {
            let mut gen = ItemGenerator::new(format!("qdelay-{name}-{requests}"));
            let mut picker = AccessPicker::new(&members, seed ^ requests as u64);
            let queued: Vec<QueuedRequest<gred_net::ServerId>> = (0..requests)
                .map(|i| {
                    let id = gen.next_id();
                    let access = picker.pick();
                    let (actual, shortest) = sut.request_hops(&id, access);
                    QueuedRequest {
                        arrival_us: window_us * (i as f64 / requests.max(1) as f64)
                            + latency.one_way_us(actual),
                        server: sut.owner_server(&id),
                        network_us: latency.one_way_us(actual) + latency.one_way_us(shortest),
                    }
                })
                .collect();
            let delays = fifo_delays(&queued, latency.service_us);
            rows.push(DelayRow {
                requests,
                system: name.to_string(),
                avg_delay_us: delays.iter().sum::<f64>() / delays.len().max(1) as f64,
            });
        }
    }
    rows
}

fn testbed_topology_with_pool() -> (gred_net::Topology, gred_net::ServerPool) {
    testbed_topology()
}

#[cfg(test)]
mod queueing_tests {
    use super::*;

    #[test]
    fn unsaturated_volume_stays_flat() {
        // 1 second window, 200 µs service, 12 servers: capacity ≈ 60k
        // requests; 1000 is deeply unsaturated.
        let rows =
            response_delay_with_queueing(&[100, 1000], LatencyModel::default(), 1_000_000.0, 5);
        for name in ["GRED", "GRED-NoCVT"] {
            let d: Vec<f64> = rows
                .iter()
                .filter(|r| r.system == name)
                .map(|r| r.avg_delay_us)
                .collect();
            assert!(
                (d[1] / d[0] - 1.0).abs() < 0.1,
                "{name}: unsaturated delay should be flat: {d:?}"
            );
        }
    }

    #[test]
    fn saturation_inflates_delay() {
        // Squeeze the same requests into a tiny window: queues build.
        let flat = response_delay_with_queueing(&[500], LatencyModel::default(), 10_000_000.0, 6);
        let packed = response_delay_with_queueing(&[500], LatencyModel::default(), 1_000.0, 6);
        assert!(
            packed[0].avg_delay_us > 2.0 * flat[0].avg_delay_us,
            "saturated {} vs unsaturated {}",
            packed[0].avg_delay_us,
            flat[0].avg_delay_us
        );
    }
}
