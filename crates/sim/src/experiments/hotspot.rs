//! Request-load experiment under Zipf popularity (extension).
//!
//! GRED's storage load is balanced by hashing regardless of which items
//! are *requested*, but a skewed popularity distribution concentrates
//! request traffic on whichever servers happen to own the hot items. The
//! paper's replication mechanism (Section VI) is the remedy: replicating
//! the hot head of the catalog and fetching the nearest copy spreads
//! request load across the replicas. This experiment quantifies both
//! effects.

use crate::metrics::max_avg;
use crate::workload::{AccessPicker, ZipfPicker};
use bytes::Bytes;
use gred::{GredConfig, GredNetwork};
use gred_hash::DataId;
use gred_net::{waxman_topology, ServerPool, WaxmanConfig};
use serde::Serialize;
use std::collections::HashMap;

/// One row of the hotspot experiment.
#[derive(Debug, Clone, Serialize)]
pub struct HotspotRow {
    /// Zipf exponent of the request popularity.
    pub zipf_s: f64,
    /// Copies of each of the hottest items (1 = no replication).
    pub hot_replicas: u32,
    /// `max/avg` of *requests served* per server.
    pub request_max_avg: f64,
}

/// Serves `requests` Zipf-distributed retrievals over a `catalog_size`
/// catalog on a fixed network; the top `hot_items` of the catalog are
/// stored with `hot_replicas` copies and fetched nearest-copy.
pub fn hotspot_request_load(
    zipf_exponents: &[f64],
    hot_replicas: &[u32],
    catalog_size: usize,
    hot_items: usize,
    requests: usize,
    seed: u64,
) -> Vec<HotspotRow> {
    let switches = 25;
    let (topo, _) = waxman_topology(&WaxmanConfig::with_switches(switches, seed));
    let pool = ServerPool::uniform(switches, 4, u64::MAX);

    let mut rows = Vec::new();
    for &replicas in hot_replicas {
        // One network per replication factor: catalog stored up front.
        let mut net = GredNetwork::build(
            topo.clone(),
            pool.clone(),
            GredConfig::default().seeded(seed),
        )
        .expect("builds");
        let ids: Vec<DataId> = (0..catalog_size)
            .map(|k| DataId::new(format!("hot/{k:05}")))
            .collect();
        for (k, id) in ids.iter().enumerate() {
            let copies = if k < hot_items { replicas } else { 1 };
            net.place_replicated(id, Bytes::from_static(b"v"), copies, k % switches)
                .expect("places");
        }

        for &s in zipf_exponents {
            let mut zipf = ZipfPicker::new(catalog_size, s, seed ^ 17);
            let mut picker = AccessPicker::new(net.members(), seed ^ 23);
            let mut served: HashMap<gred_net::ServerId, u64> = HashMap::new();
            for _ in 0..requests {
                let rank = zipf.pick();
                let access = picker.pick();
                let copies = if rank < hot_items { replicas } else { 1 };
                let got = net
                    .retrieve_nearest(&ids[rank], copies, access)
                    .expect("stored items retrieve");
                *served.entry(got.server).or_default() += 1;
            }
            let mut loads: Vec<u64> = served.into_values().collect();
            loads.resize(net.pool().total_servers().max(loads.len()), 0);
            rows.push(HotspotRow {
                zipf_s: s,
                hot_replicas: replicas,
                request_max_avg: max_avg(&loads),
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skew_concentrates_requests() {
        let rows = hotspot_request_load(&[0.0, 1.2], &[1], 200, 10, 3_000, 5);
        let uniform = rows
            .iter()
            .find(|r| r.zipf_s == 0.0)
            .unwrap()
            .request_max_avg;
        let skewed = rows
            .iter()
            .find(|r| r.zipf_s == 1.2)
            .unwrap()
            .request_max_avg;
        assert!(
            skewed > uniform,
            "zipf skew must concentrate request load: uniform {uniform:.2}, skewed {skewed:.2}"
        );
    }

    #[test]
    fn replicating_the_head_spreads_request_load() {
        let rows = hotspot_request_load(&[1.2], &[1, 4], 200, 10, 3_000, 6);
        let single = rows
            .iter()
            .find(|r| r.hot_replicas == 1)
            .unwrap()
            .request_max_avg;
        let quad = rows
            .iter()
            .find(|r| r.hot_replicas == 4)
            .unwrap()
            .request_max_avg;
        assert!(
            quad < single,
            "4 copies of hot items should cut request max/avg: {quad:.2} vs {single:.2}"
        );
    }
}
