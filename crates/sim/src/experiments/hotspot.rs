//! Request-load experiment under Zipf popularity (extension).
//!
//! GRED's storage load is balanced by hashing regardless of which items
//! are *requested*, but a skewed popularity distribution concentrates
//! request traffic on whichever servers happen to own the hot items. The
//! paper's replication mechanism (Section VI) is the remedy: replicating
//! the hot head of the catalog and fetching the nearest copy spreads
//! request load across the replicas. This experiment quantifies both
//! effects.

use crate::metrics::max_avg;
use crate::workload::{AccessPicker, ZipfPicker};
use bytes::Bytes;
use gred::{GredConfig, GredNetwork};
use gred_hash::DataId;
use gred_net::{waxman_topology, ServerPool, WaxmanConfig};
use serde::Serialize;
use std::collections::HashMap;

/// One row of the hotspot experiment.
#[derive(Debug, Clone, Serialize)]
pub struct HotspotRow {
    /// Zipf exponent of the request popularity.
    pub zipf_s: f64,
    /// Copies of each of the hottest items (1 = no replication).
    pub hot_replicas: u32,
    /// `max/avg` of *requests served* per server.
    pub request_max_avg: f64,
}

/// Serves `requests` Zipf-distributed retrievals over a `catalog_size`
/// catalog on a fixed network; the top `hot_items` of the catalog are
/// stored with `hot_replicas` copies and fetched nearest-copy.
pub fn hotspot_request_load(
    zipf_exponents: &[f64],
    hot_replicas: &[u32],
    catalog_size: usize,
    hot_items: usize,
    requests: usize,
    seed: u64,
) -> Vec<HotspotRow> {
    let switches = 25;
    let (topo, _) = waxman_topology(&WaxmanConfig::with_switches(switches, seed));
    let pool = ServerPool::uniform(switches, 4, u64::MAX);

    let mut rows = Vec::new();
    for &replicas in hot_replicas {
        // One network per replication factor: catalog stored up front.
        let mut net = GredNetwork::build(
            topo.clone(),
            pool.clone(),
            GredConfig::default().seeded(seed),
        )
        .expect("builds");
        let ids: Vec<DataId> = (0..catalog_size)
            .map(|k| DataId::new(format!("hot/{k:05}")))
            .collect();
        for (k, id) in ids.iter().enumerate() {
            let copies = if k < hot_items { replicas } else { 1 };
            net.place_replicated(id, Bytes::from_static(b"v"), copies, k % switches)
                .expect("places");
        }

        for &s in zipf_exponents {
            let mut zipf = ZipfPicker::new(catalog_size, s, seed ^ 17);
            let mut picker = AccessPicker::new(net.members(), seed ^ 23);
            let mut served: HashMap<gred_net::ServerId, u64> = HashMap::new();
            for _ in 0..requests {
                let rank = zipf.pick();
                let access = picker.pick();
                let copies = if rank < hot_items { replicas } else { 1 };
                let got = net
                    .retrieve_nearest(&ids[rank], copies, access)
                    .expect("stored items retrieve");
                *served.entry(got.server).or_default() += 1;
            }
            let mut loads: Vec<u64> = served.into_values().collect();
            loads.resize(net.pool().total_servers().max(loads.len()), 0);
            rows.push(HotspotRow {
                zipf_s: s,
                hot_replicas: replicas,
                request_max_avg: max_avg(&loads),
            });
        }
    }
    rows
}

/// One phase of the flash-crowd variant.
#[derive(Debug, Clone, Serialize)]
pub struct FlashCrowdRow {
    /// Phase label: steady background, the regional flash crowd, or the
    /// flash crowd after the operator replicates the viral key.
    pub phase: &'static str,
    /// `max/avg` of requests served per server during the phase.
    pub request_max_avg: f64,
    /// Fraction of the phase's requests served by the single busiest
    /// server — how much of the crowd one box absorbs.
    pub peak_share: f64,
}

/// The flash-crowd scenario: a key that nobody requested suddenly goes
/// viral in one *region* — every request for it enters through a small
/// neighborhood of access switches, as a regionally-trending item does
/// on an edge network. Three phases over the same network:
///
/// 1. `background`: uniform requests over the whole catalog, all access
///    switches — the steady state.
/// 2. `flash`: 80% of requests hit the one cold key, all entering
///    through `region_size` contiguous access members.
/// 3. `flash+replicas`: the same crowd after the operator gives the
///    viral key 4 copies, fetched nearest-copy.
///
/// The socket-level twin of this scenario
/// (`flash_crowd_cache_converges_without_stale_serves` in
/// `tests/cluster_loopback.rs`) asserts the read path's cache absorbs
/// the crowd — hit rate converging, zero stale serves — via counters
/// scraped over the wire.
pub fn flash_crowd_request_load(
    catalog_size: usize,
    requests: usize,
    region_size: usize,
    seed: u64,
) -> Vec<FlashCrowdRow> {
    let switches = 25;
    let (topo, _) = waxman_topology(&WaxmanConfig::with_switches(switches, seed));
    let pool = ServerPool::uniform(switches, 4, u64::MAX);
    let mut net = GredNetwork::build(topo, pool, GredConfig::default().seeded(seed))
        .expect("seeded network builds");

    let ids: Vec<DataId> = (0..catalog_size)
        .map(|k| DataId::new(format!("flash/{k:05}")))
        .collect();
    for (k, id) in ids.iter().enumerate() {
        net.place_replicated(id, Bytes::from_static(b"v"), 1, k % switches)
            .expect("catalog places");
    }
    // The viral key: placed like everything else, requested by nobody
    // until the flash phase.
    let viral = DataId::new("flash/viral");
    net.place_replicated(&viral, Bytes::from_static(b"breaking"), 1, 0)
        .expect("viral key places");

    let members = net.members().to_vec();
    let region: Vec<usize> = members.iter().copied().take(region_size.max(1)).collect();
    let total_servers = net.pool().total_servers();
    let mut rows = Vec::new();

    let run_phase = |phase: &'static str,
                     viral_copies: u32,
                     net: &GredNetwork,
                     seed_mix: u64|
     -> FlashCrowdRow {
        let mut zipf = ZipfPicker::new(catalog_size, 0.0, seed ^ seed_mix);
        let mut all_picker = AccessPicker::new(&members, seed ^ seed_mix ^ 29);
        let mut region_picker = AccessPicker::new(&region, seed ^ seed_mix ^ 31);
        let mut served: HashMap<gred_net::ServerId, u64> = HashMap::new();
        let mut toggle = 0u64;
        for _ in 0..requests {
            toggle = toggle.wrapping_add(1);
            // The flash phases route 80% of traffic at the viral key,
            // always entering through the region.
            let flash = phase != "background" && toggle % 5 != 0;
            let got = if flash {
                net.retrieve_nearest(&viral, viral_copies, region_picker.pick())
                    .expect("viral key retrieves")
            } else {
                net.retrieve_nearest(&ids[zipf.pick()], 1, all_picker.pick())
                    .expect("catalog retrieves")
            };
            *served.entry(got.server).or_default() += 1;
        }
        let peak = served.values().copied().max().unwrap_or(0);
        let mut loads: Vec<u64> = served.into_values().collect();
        loads.resize(total_servers.max(loads.len()), 0);
        FlashCrowdRow {
            phase,
            request_max_avg: max_avg(&loads),
            peak_share: peak as f64 / requests as f64,
        }
    };

    rows.push(run_phase("background", 1, &net, 41));
    rows.push(run_phase("flash", 1, &net, 43));
    // Operator response: replicate the viral key, crowd keeps coming.
    net.place_replicated(&viral, Bytes::from_static(b"breaking"), 4, 0)
        .expect("viral key re-replicates");
    rows.push(run_phase("flash+replicas", 4, &net, 47));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skew_concentrates_requests() {
        let rows = hotspot_request_load(&[0.0, 1.2], &[1], 200, 10, 3_000, 5);
        let uniform = rows
            .iter()
            .find(|r| r.zipf_s == 0.0)
            .unwrap()
            .request_max_avg;
        let skewed = rows
            .iter()
            .find(|r| r.zipf_s == 1.2)
            .unwrap()
            .request_max_avg;
        assert!(
            skewed > uniform,
            "zipf skew must concentrate request load: uniform {uniform:.2}, skewed {skewed:.2}"
        );
    }

    #[test]
    fn flash_crowd_concentrates_on_one_server() {
        let rows = flash_crowd_request_load(150, 3_000, 3, 7);
        let background = rows.iter().find(|r| r.phase == "background").unwrap();
        let flash = rows.iter().find(|r| r.phase == "flash").unwrap();
        assert!(
            flash.peak_share > background.peak_share,
            "a regional flash crowd must pile onto the viral key's server: \
             background peak share {:.3}, flash {:.3}",
            background.peak_share,
            flash.peak_share
        );
        assert!(
            flash.request_max_avg > background.request_max_avg,
            "flash must worsen request max/avg: background {:.2}, flash {:.2}",
            background.request_max_avg,
            flash.request_max_avg
        );
    }

    #[test]
    fn replicating_the_viral_key_tames_the_crowd() {
        let rows = flash_crowd_request_load(150, 3_000, 3, 8);
        let flash = rows.iter().find(|r| r.phase == "flash").unwrap();
        let healed = rows.iter().find(|r| r.phase == "flash+replicas").unwrap();
        assert!(
            healed.peak_share < flash.peak_share,
            "4 copies should shrink the busiest server's share: \
             flash {:.3}, with replicas {:.3}",
            flash.peak_share,
            healed.peak_share
        );
    }

    #[test]
    fn replicating_the_head_spreads_request_load() {
        let rows = hotspot_request_load(&[1.2], &[1, 4], 200, 10, 3_000, 6);
        let single = rows
            .iter()
            .find(|r| r.hot_replicas == 1)
            .unwrap()
            .request_max_avg;
        let quad = rows
            .iter()
            .find(|r| r.hot_replicas == 4)
            .unwrap()
            .request_max_avg;
        assert!(
            quad < single,
            "4 copies of hot items should cut request max/avg: {quad:.2} vs {single:.2}"
        );
    }
}
