//! One module per figure of the paper's evaluation (Section VII).
//!
//! | Module | Paper figure | What it reproduces |
//! |---|---|---|
//! | [`testbed`] | Fig. 7(a), 7(b) | prototype stretch ≈ 1; CVT's load-balance win |
//! | [`delay`] | Fig. 8 | flat response delay vs number of requests |
//! | [`stretch`] | Fig. 9(a)–(c) | stretch vs size, vs min degree, with range extension |
//! | [`table_entries`] | Fig. 9(d) | forwarding entries per switch vs network size |
//! | [`load`] | Fig. 11(a)–(c) | `max/avg` vs size, vs items, vs iterations `T` |
//!
//! Beyond the paper's figures, [`churn`] quantifies Section VI's
//! migration-locality claim and [`embedding`] ablates the M-position
//! embedding against oracle and random coordinates.
//!
//! Every function takes explicit parameters so the `repro` binary and the
//! Criterion benches can run quick and paper-scale variants of the same
//! code.

pub mod availability;
pub mod churn;
pub mod contention;
pub mod control_overhead;
pub mod delay;
pub mod embedding;
pub mod forwarding_load;
pub mod heterogeneity;
pub mod hotspot;
pub mod load;
pub mod stretch;
pub mod table_entries;
pub mod testbed;

use gred_net::{waxman_topology, ServerPool, Topology, WaxmanConfig};

/// The standard simulation substrate: a Waxman topology with
/// `servers_per_switch` servers behind every switch (the paper attaches
/// 10), unbounded capacities.
pub fn substrate(
    switches: usize,
    servers_per_switch: usize,
    min_degree: usize,
    seed: u64,
) -> (Topology, ServerPool) {
    let cfg = WaxmanConfig {
        switches,
        min_degree,
        seed,
        ..WaxmanConfig::default()
    };
    let (topo, _) = waxman_topology(&cfg);
    let pool = ServerPool::uniform(switches, servers_per_switch, u64::MAX);
    (topo, pool)
}
