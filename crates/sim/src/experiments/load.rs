//! Load-balance experiments: Figs. 11(a), 11(b), 11(c).
//!
//! Items are hashed and assigned to their owner server (no payloads are
//! stored — the figures only need per-server counts), so the paper's
//! 100k–1M item sweeps run comfortably.

use crate::experiments::substrate;
use crate::metrics::max_avg;
use crate::runner::{default_threads, parallel_map};
use crate::systems::{ComparedSystem, SystemUnderTest};
use crate::workload::ItemGenerator;
use gred_net::ServerId;
use serde::Serialize;
use std::collections::HashMap;

/// One plotted point of a load figure.
#[derive(Debug, Clone, Serialize)]
pub struct LoadRow {
    /// X-axis value (total servers, items, or iterations `T`).
    pub x: usize,
    /// System name.
    pub system: String,
    /// The `max/avg` load-balance metric (1 is perfect).
    pub max_avg: f64,
}

/// Computes `max/avg` after hashing `items` ids into `sut`.
pub fn measure_load(sut: &SystemUnderTest, items: usize, prefix: &str) -> f64 {
    let mut gen = ItemGenerator::new(prefix);
    let mut counts: HashMap<ServerId, u64> = HashMap::new();
    for _ in 0..items {
        *counts.entry(sut.owner_server(&gen.next_id())).or_default() += 1;
    }
    // Every server participates in the average, loaded or not.
    let gred_servers = sut.as_gred().map(|n| n.pool().total_servers());
    let total_servers = gred_servers.unwrap_or_else(|| {
        // Chord runs over the same uniform pool; recover the count from
        // the topology (10 servers per switch in the standard substrate).
        sut.topology().switch_count() * 10
    });
    let mut loads: Vec<u64> = counts.into_values().collect();
    loads.resize(total_servers.max(loads.len()), 0);
    max_avg(&loads)
}

/// Fig. 11(a): `max/avg` vs total edge servers (10 per switch), with
/// `items` data items. Compares Chord, GRED(T=10), GRED(T=50).
pub fn load_vs_network_size(server_counts: &[usize], items: usize, seed: u64) -> Vec<LoadRow> {
    parallel_map(server_counts.to_vec(), default_threads(), |servers| {
        let switches = (servers / 10).max(1);
        let (topo, pool) = substrate(switches, 10, 3, seed ^ servers as u64);
        [
            ComparedSystem::Chord { virtual_nodes: 1 },
            ComparedSystem::Gred { iterations: 10 },
            ComparedSystem::Gred { iterations: 50 },
        ]
        .into_iter()
        .map(|system| {
            let sut = SystemUnderTest::build(topo.clone(), pool.clone(), system, seed);
            LoadRow {
                x: servers,
                system: system.name(),
                max_avg: measure_load(&sut, items, &format!("load-a-{servers}")),
            }
        })
        .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Fig. 11(b): `max/avg` vs number of placed items on a fixed network
/// with `servers` edge servers.
pub fn load_vs_items(item_counts: &[usize], servers: usize, seed: u64) -> Vec<LoadRow> {
    let switches = (servers / 10).max(1);
    let (topo, pool) = substrate(switches, 10, 3, seed);
    let systems = [
        ComparedSystem::Chord { virtual_nodes: 1 },
        ComparedSystem::Gred { iterations: 10 },
        ComparedSystem::Gred { iterations: 50 },
    ];
    let suts: Vec<(ComparedSystem, SystemUnderTest)> = systems
        .into_iter()
        .map(|s| {
            (
                s,
                SystemUnderTest::build(topo.clone(), pool.clone(), s, seed),
            )
        })
        .collect();
    let mut rows = Vec::new();
    for &items in item_counts {
        for (system, sut) in &suts {
            rows.push(LoadRow {
                x: items,
                system: system.name(),
                max_avg: measure_load(sut, items, &format!("load-b-{items}")),
            });
        }
    }
    rows
}

/// Fig. 11(c): `max/avg` vs C-regulation iterations `T`, with Chord and
/// GRED-NoCVT as flat references.
pub fn load_vs_iterations(ts: &[usize], items: usize, servers: usize, seed: u64) -> Vec<LoadRow> {
    let switches = (servers / 10).max(1);
    let (topo, pool) = substrate(switches, 10, 3, seed);
    let mut rows = Vec::new();

    for system in [
        ComparedSystem::Chord { virtual_nodes: 1 },
        ComparedSystem::Gred { iterations: 0 },
    ] {
        let sut = SystemUnderTest::build(topo.clone(), pool.clone(), system, seed);
        let value = measure_load(&sut, items, "load-c-flat");
        for &t in ts {
            rows.push(LoadRow {
                x: t,
                system: system.name(),
                max_avg: value, // independent of T, plotted as a flat line
            });
        }
    }

    rows.extend(parallel_map(ts.to_vec(), default_threads(), |t| {
        let sut = SystemUnderTest::build(
            topo.clone(),
            pool.clone(),
            ComparedSystem::Gred { iterations: t },
            seed,
        );
        LoadRow {
            x: t,
            system: "GRED".to_string(),
            max_avg: measure_load(&sut, items, "load-c-gred"),
        }
    }));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11a_ordering_holds() {
        let rows = load_vs_network_size(&[200], 20_000, 3);
        let get = |name: &str| rows.iter().find(|r| r.system == name).unwrap().max_avg;
        let chord = get("Chord");
        let t10 = get("GRED(T=10)");
        let t50 = get("GRED(T=50)");
        assert!(t50 < chord, "GRED(T=50) {t50:.2} !< Chord {chord:.2}");
        assert!(t10 < chord, "GRED(T=10) {t10:.2} !< Chord {chord:.2}");
        assert!(t50 <= t10 * 1.25, "more iterations should not hurt much");
    }

    #[test]
    fn fig11c_more_iterations_improve_balance() {
        let rows = load_vs_iterations(&[0, 40], 20_000, 200, 5);
        let gred_at = |t: usize| {
            rows.iter()
                .find(|r| r.system == "GRED" && r.x == t)
                .unwrap()
                .max_avg
        };
        assert!(
            gred_at(40) < gred_at(0),
            "T=40 ({:.2}) should beat T=0 ({:.2})",
            gred_at(40),
            gred_at(0)
        );
        // Flat references present for every T.
        assert_eq!(rows.iter().filter(|r| r.system == "Chord").count(), 2);
    }

    #[test]
    fn measured_loads_cover_all_items() {
        // max_avg of a uniform distribution over many items approaches a
        // small constant; sanity-check magnitudes.
        let rows = load_vs_items(&[10_000], 100, 9);
        for r in &rows {
            assert!(r.max_avg >= 1.0, "{}: max/avg {} < 1", r.system, r.max_avg);
            assert!(
                r.max_avg < 20.0,
                "{}: max/avg {} absurd",
                r.system,
                r.max_avg
            );
        }
    }
}
