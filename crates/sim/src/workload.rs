//! Workload generation: data items and access points.
//!
//! The paper's simulations "randomly generate 100 data items … and
//! randomly select an access point for each data" for stretch experiments,
//! and place 100k–1M items for load experiments. Generators are seeded and
//! deterministic.

use gred_hash::DataId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A stream of unique data identifiers, deterministic per seed.
#[derive(Debug, Clone)]
pub struct ItemGenerator {
    prefix: String,
    next: u64,
}

impl ItemGenerator {
    /// A generator whose ids carry `prefix` (distinct prefixes give
    /// disjoint key sets).
    pub fn new(prefix: impl Into<String>) -> Self {
        ItemGenerator {
            prefix: prefix.into(),
            next: 0,
        }
    }

    /// The next identifier.
    pub fn next_id(&mut self) -> DataId {
        let id = DataId::new(format!("{}/{}", self.prefix, self.next));
        self.next += 1;
        id
    }

    /// The next `n` identifiers.
    pub fn take_ids(&mut self, n: usize) -> Vec<DataId> {
        (0..n).map(|_| self.next_id()).collect()
    }
}

/// Uniformly random access-point (switch) picker over a member list.
#[derive(Debug, Clone)]
pub struct AccessPicker {
    members: Vec<usize>,
    rng: StdRng,
}

impl AccessPicker {
    /// Picks uniformly among `members`, deterministically per `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    pub fn new(members: &[usize], seed: u64) -> Self {
        assert!(!members.is_empty(), "need at least one access switch");
        AccessPicker {
            members: members.to_vec(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The next access switch.
    pub fn pick(&mut self) -> usize {
        self.members[self.rng.gen_range(0..self.members.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_deterministic() {
        let mut a = ItemGenerator::new("w");
        let mut b = ItemGenerator::new("w");
        let ia = a.take_ids(100);
        let ib = b.take_ids(100);
        assert_eq!(ia, ib);
        let set: std::collections::HashSet<_> = ia.iter().collect();
        assert_eq!(set.len(), 100);
    }

    #[test]
    fn prefixes_are_disjoint() {
        let mut a = ItemGenerator::new("a");
        let mut b = ItemGenerator::new("b");
        assert_ne!(a.next_id(), b.next_id());
    }

    #[test]
    fn picker_is_uniformish_and_deterministic() {
        let members = [3usize, 7, 9];
        let mut p = AccessPicker::new(&members, 5);
        let mut q = AccessPicker::new(&members, 5);
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            let x = p.pick();
            assert_eq!(x, q.pick());
            counts[members.iter().position(|&m| m == x).unwrap()] += 1;
        }
        for c in counts {
            assert!((800..=1200).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one access switch")]
    fn empty_members_panics() {
        let _ = AccessPicker::new(&[], 0);
    }
}

/// Zipf-distributed popularity over a fixed catalog of items: item `k`
/// (0-based rank) is requested with probability ∝ `1 / (k+1)^s`.
///
/// Storage load in GRED depends only on hashing and stays balanced under
/// any popularity skew; *request* load does not — replication of hot
/// items (paper Section VI) is the lever, and this generator drives those
/// experiments.
#[derive(Debug, Clone)]
pub struct ZipfPicker {
    /// Cumulative probability per rank.
    cdf: Vec<f64>,
    rng: StdRng,
}

impl ZipfPicker {
    /// A picker over `catalog_size` ranks with exponent `s` (s = 0 is
    /// uniform; s ≈ 1 is classic web-like skew).
    ///
    /// # Panics
    ///
    /// Panics if `catalog_size == 0` or `s < 0`.
    pub fn new(catalog_size: usize, s: f64, seed: u64) -> Self {
        assert!(catalog_size > 0, "catalog must not be empty");
        assert!(s >= 0.0, "zipf exponent must be non-negative");
        let weights: Vec<f64> = (0..catalog_size)
            .map(|k| 1.0 / ((k + 1) as f64).powf(s))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        ZipfPicker {
            cdf,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws the next rank (0 = most popular).
    pub fn pick(&mut self) -> usize {
        let u: f64 = self.rng.gen_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod zipf_tests {
    use super::*;

    #[test]
    fn uniform_when_s_zero() {
        let mut p = ZipfPicker::new(10, 0.0, 1);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[p.pick()] += 1;
        }
        for &c in &counts {
            assert!((700..=1300).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn skewed_when_s_one() {
        let mut p = ZipfPicker::new(100, 1.0, 2);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[p.pick()] += 1;
        }
        assert!(counts[0] > counts[50] * 5, "rank 0 should dominate rank 50");
        assert!(counts[0] > counts[9], "monotone-ish head");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = ZipfPicker::new(50, 0.9, 7);
        let mut b = ZipfPicker::new(50, 0.9, 7);
        for _ in 0..100 {
            assert_eq!(a.pick(), b.pick());
        }
    }

    #[test]
    #[should_panic(expected = "catalog")]
    fn empty_catalog_panics() {
        let _ = ZipfPicker::new(0, 1.0, 0);
    }
}
