#![warn(missing_docs)]

//! The experiment harness: everything needed to regenerate the paper's
//! evaluation (Section VII), figure by figure.
//!
//! - [`metrics`]: routing stretch and `max/avg` load-balance metrics with
//!   the paper's 90% confidence intervals,
//! - [`workload`]: data-item and access-point generators,
//! - [`systems`]: uniform drivers for the three compared systems (GRED,
//!   GRED-NoCVT, Chord) over the same topology and server pool,
//! - [`experiments`]: one module per figure, each returning the table of
//!   numbers the paper plots,
//! - [`report`]: plain-text table rendering for the `repro` binary.
//!
//! Every experiment is deterministic given its seed, and scaled-down
//! presets (`quick`) exist so the full suite runs in CI time; the paper's
//! full parameters are the `paper` presets.

pub mod experiments;
pub mod metrics;
pub mod queueing;
pub mod report;
pub mod runner;
pub mod systems;
pub mod trace;
pub mod viz;
pub mod workload;

pub use metrics::{ci90_half_width, max_avg, MetricSeries};
pub use systems::{ComparedSystem, SystemUnderTest};
