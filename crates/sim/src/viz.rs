//! SVG rendering of GRED's virtual space.
//!
//! Produces a self-contained SVG showing the unit square, the switches'
//! Voronoi cells (each cell's area = that switch's share of the hashed
//! load), the Delaunay edges greedy forwarding follows, the switch
//! positions, and optionally a set of data positions — the picture the
//! paper's Figs. 4–5 sketch.

use gred::GredNetwork;
use gred_geometry::{voronoi_cells, Point2, Polygon};
use std::fmt::Write as _;

/// Rendering options.
#[derive(Debug, Clone)]
pub struct VizOptions {
    /// Output square side in pixels.
    pub size: f64,
    /// Draw Voronoi cell boundaries.
    pub voronoi: bool,
    /// Draw DT edges.
    pub dt_edges: bool,
    /// Extra data positions to scatter (e.g. hashed item positions).
    pub data_points: Vec<Point2>,
}

impl Default for VizOptions {
    fn default() -> Self {
        VizOptions {
            size: 640.0,
            voronoi: true,
            dt_edges: true,
            data_points: Vec::new(),
        }
    }
}

fn px(options: &VizOptions, p: Point2) -> (f64, f64) {
    // SVG y grows downward; flip so the square reads like the math.
    (p.x * options.size, (1.0 - p.y) * options.size)
}

/// Renders `net`'s virtual space as an SVG document.
///
/// ```
/// use gred::{GredConfig, GredNetwork};
/// use gred_net::{waxman_topology, ServerPool, WaxmanConfig};
/// use gred_sim::viz::{render_svg, VizOptions};
///
/// # fn main() -> Result<(), gred::GredError> {
/// let (topo, _) = waxman_topology(&WaxmanConfig::with_switches(10, 1));
/// let pool = ServerPool::uniform(10, 2, u64::MAX);
/// let net = GredNetwork::build(topo, pool, GredConfig::default())?;
/// let svg = render_svg(&net, &VizOptions::default());
/// assert!(svg.starts_with("<svg"));
/// assert!(svg.contains("</svg>"));
/// # Ok(())
/// # }
/// ```
pub fn render_svg(net: &GredNetwork, options: &VizOptions) -> String {
    let s = options.size;
    let mut out = String::new();
    let _ = write!(
        out,
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{s}" height="{s}" viewBox="0 0 {s} {s}">"##
    );
    let _ = write!(
        out,
        r##"<rect x="0" y="0" width="{s}" height="{s}" fill="#fdfdfd" stroke="#444" stroke-width="1"/>"##
    );

    let positions: Vec<Point2> = net
        .members()
        .iter()
        .map(|&m| net.position_of_switch(m).expect("member has a position"))
        .collect();

    if options.voronoi && !positions.is_empty() {
        for cell in voronoi_cells(&positions, &Polygon::unit_square()) {
            if cell.is_empty() {
                continue;
            }
            let pts: Vec<String> = cell
                .vertices()
                .iter()
                .map(|&v| {
                    let (x, y) = px(options, v);
                    format!("{x:.1},{y:.1}")
                })
                .collect();
            let _ = write!(
                out,
                r##"<polygon points="{}" fill="none" stroke="#9ecae1" stroke-width="1"/>"##,
                pts.join(" ")
            );
        }
    }

    if options.dt_edges {
        for (a, b) in net.dt().edges() {
            let pa = net.position_of_switch(a).expect("member");
            let pb = net.position_of_switch(b).expect("member");
            let (x1, y1) = px(options, pa);
            let (x2, y2) = px(options, pb);
            // Physical DT edges solid, virtual links dashed.
            let dash = if net.topology().has_link(a, b) {
                ""
            } else {
                r#" stroke-dasharray="4 3""#
            };
            let _ = write!(
                out,
                r##"<line x1="{x1:.1}" y1="{y1:.1}" x2="{x2:.1}" y2="{y2:.1}" stroke="#bbbbbb" stroke-width="1"{dash}/>"##
            );
        }
    }

    for &p in &options.data_points {
        let (x, y) = px(options, p);
        let _ = write!(
            out,
            r##"<circle cx="{x:.1}" cy="{y:.1}" r="1.5" fill="#74c476"/>"##
        );
    }

    for (&m, &p) in net.members().iter().zip(&positions) {
        let (x, y) = px(options, p);
        let _ = write!(
            out,
            r##"<circle cx="{x:.1}" cy="{y:.1}" r="4" fill="#d62728"/>"##
        );
        let _ = write!(
            out,
            r##"<text x="{:.1}" y="{:.1}" font-size="10" font-family="monospace" fill="#333">{m}</text>"##,
            x + 6.0,
            y - 4.0
        );
    }

    out.push_str("</svg>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gred::GredConfig;
    use gred_net::{waxman_topology, ServerPool, WaxmanConfig};

    fn net() -> GredNetwork {
        let (topo, _) = waxman_topology(&WaxmanConfig::with_switches(12, 3));
        let pool = ServerPool::uniform(12, 2, u64::MAX);
        GredNetwork::build(topo, pool, GredConfig::with_iterations(10)).unwrap()
    }

    #[test]
    fn svg_has_all_layers() {
        let svg = render_svg(&net(), &VizOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("<polygon"), "voronoi cells rendered");
        assert!(svg.contains("<line"), "dt edges rendered");
        assert_eq!(
            svg.matches(r##"fill="#d62728""##).count(),
            12,
            "one dot per switch"
        );
    }

    #[test]
    fn layers_can_be_disabled() {
        let opts = VizOptions {
            voronoi: false,
            dt_edges: false,
            ..VizOptions::default()
        };
        let svg = render_svg(&net(), &opts);
        assert!(!svg.contains("<polygon"));
        assert!(!svg.contains("<line"));
    }

    #[test]
    fn data_points_rendered() {
        let opts = VizOptions {
            data_points: vec![Point2::new(0.5, 0.5), Point2::new(0.1, 0.9)],
            ..VizOptions::default()
        };
        let svg = render_svg(&net(), &opts);
        assert_eq!(svg.matches(r##"fill="#74c476""##).count(), 2);
    }

    #[test]
    fn y_axis_is_flipped() {
        // A data point at y=1 (top of the math square) renders at
        // SVG y ≈ 0 (top of the image).
        let opts = VizOptions {
            size: 100.0,
            data_points: vec![Point2::new(0.0, 1.0)],
            voronoi: false,
            dt_edges: false,
        };
        let svg = render_svg(&net(), &opts);
        assert!(
            svg.contains(r#"<circle cx="0.0" cy="0.0" r="1.5""#),
            "{svg}"
        );
    }
}
