//! Parallel experiment execution.
//!
//! Figure sweeps are embarrassingly parallel over their x-axis points
//! (each point builds its own topology and systems). The ordered
//! fork/join map lives in [`gred_runtime`] so the control plane can use
//! the same machinery; it is re-exported here for existing callers.
//!
//! ```
//! let squares = gred_sim::runner::parallel_map(vec![1, 2, 3, 4], 2, |x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

pub use gred_runtime::{default_threads, parallel_map};
