//! Parallel experiment execution.
//!
//! Figure sweeps are embarrassingly parallel over their x-axis points
//! (each point builds its own topology and systems). [`parallel_map`]
//! fans work out over scoped threads and returns results in input order;
//! experiments stay deterministic because each work item carries its own
//! seed.

use parking_lot::Mutex;

/// Applies `f` to every item on a pool of `threads` scoped worker
/// threads, returning outputs in input order.
///
/// With `threads == 1` (or one item) the work runs inline on the caller's
/// thread. Panics in `f` propagate to the caller.
///
/// ```
/// let squares = gred_sim::runner::parallel_map(vec![1, 2, 3, 4], 2, |x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }

    let work: Mutex<Vec<(usize, T)>> = Mutex::new(items.into_iter().enumerate().rev().collect());
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());

    crossbeam::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|_| loop {
                let Some((idx, item)) = work.lock().pop() else {
                    return;
                };
                let out = f(item);
                results.lock()[idx] = Some(out);
            });
        }
    })
    .expect("worker thread panicked");

    results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("every index was produced"))
        .collect()
}

/// A reasonable default worker count: the available parallelism, capped
/// at 8 (experiment points are coarse-grained).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..100).collect(), 4, |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_inline() {
        let out = parallel_map(vec![5, 6], 1, |x| x + 1);
        assert_eq!(out, vec![6, 7]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), 4, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn all_items_processed_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = parallel_map((0..50).collect(), 8, |x| {
            counter.fetch_add(1, Ordering::SeqCst);
            x
        });
        assert_eq!(out.len(), 50);
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        let _ = parallel_map(vec![1, 2, 3], 2, |x| {
            if x == 2 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }
}
