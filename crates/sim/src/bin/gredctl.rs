//! `gredctl` — an interactive (and scriptable) console for driving a GRED
//! network: build a topology, place and retrieve data, trigger range
//! extensions, join/leave nodes, and inspect state.
//!
//! ```text
//! cargo run --release -p gred-sim --bin gredctl
//! gred> build 20 4 7
//! gred> place sensors/cam-1 hello 0
//! gred> get sensors/cam-1 13
//! gred> stats
//! gred> quit
//! ```
//!
//! Reads commands from stdin (one per line, `#` comments ignored), so it
//! also works in pipelines: `echo -e "build 10 2\nstats" | gredctl`.
//!
//! With `--live`, `gredctl` instead talks to a *running* cluster over
//! TCP — no in-process state at all:
//!
//! ```text
//! gredctl --live 127.0.0.1:4000,127.0.0.1:4001 stats     # per-node scrape
//! gredctl --live 127.0.0.1:4000,127.0.0.1:4001 health    # aggregated view
//! gredctl --live 127.0.0.1:4000 ping                     # node liveness
//! gredctl --live 127.0.0.1:4999 admin drain              # admin endpoint verb
//! gredctl --live 127.0.0.1:4999 admin crash 3
//! gredctl --live 127.0.0.1:4999 admin join 0,2 10000,10000
//! ```

use gred::{GredConfig, GredNetwork};
use gred_cluster::{admin_call, Client, ClientConfig, ClusterHealth};
use gred_dataplane::{AdminOp, StatsSnapshot};
use gred_hash::DataId;
use gred_net::{waxman_topology, ServerId, ServerPool, WaxmanConfig};
use std::io::{BufRead, Write};
use std::net::SocketAddr;

/// The console's mutable state.
#[derive(Default)]
struct Console {
    net: Option<GredNetwork>,
}

impl Console {
    fn net(&mut self) -> Result<&mut GredNetwork, String> {
        self.net
            .as_mut()
            .ok_or_else(|| "no network yet — run: build <switches> <servers> [seed]".to_string())
    }

    /// Executes one command line, returning the text to print.
    fn execute(&mut self, line: &str) -> Result<String, String> {
        let mut parts = line.split_whitespace();
        let Some(cmd) = parts.next() else {
            return Ok(String::new());
        };
        let args: Vec<&str> = parts.collect();
        match cmd {
            "help" => Ok(HELP.to_string()),
            "build" => {
                let switches: usize = parse(args.first(), "switches")?;
                let servers: usize = parse(args.get(1), "servers-per-switch")?;
                let seed: u64 = args
                    .get(2)
                    .map_or(Ok(1), |s| s.parse().map_err(|_| format!("bad seed {s:?}")))?;
                let (topo, _) = waxman_topology(&WaxmanConfig::with_switches(switches, seed));
                let pool = ServerPool::uniform(switches, servers, u64::MAX);
                let net = GredNetwork::build(topo, pool, GredConfig::default().seeded(seed))
                    .map_err(|e| e.to_string())?;
                let reply = format!(
                    "network up: {} switches, {} servers, {} DT edges",
                    net.topology().switch_count(),
                    net.pool().total_servers(),
                    net.dt().edges().len()
                );
                self.net = Some(net);
                Ok(reply)
            }
            "place" => {
                let key = *args.first().ok_or("usage: place <key> <value> <access>")?;
                let value = *args.get(1).ok_or("usage: place <key> <value> <access>")?;
                let access: usize = parse(args.get(2), "access switch")?;
                let receipt = self
                    .net()?
                    .place(&DataId::new(key), value.as_bytes().to_vec(), access)
                    .map_err(|e| e.to_string())?;
                Ok(format!(
                    "stored on {} via {} hops{}",
                    receipt.server,
                    receipt.route.physical_hops(),
                    if receipt.extended {
                        " (range-extended)"
                    } else {
                        ""
                    }
                ))
            }
            "get" => {
                let key = *args.first().ok_or("usage: get <key> <access>")?;
                let access: usize = parse(args.get(1), "access switch")?;
                let got = self
                    .net()?
                    .retrieve(&DataId::new(key), access)
                    .map_err(|e| e.to_string())?;
                Ok(format!(
                    "{} ({} bytes) from {} in {} hops",
                    String::from_utf8_lossy(&got.payload),
                    got.payload.len(),
                    got.server,
                    got.total_hops()
                ))
            }
            "route" => {
                let key = *args.first().ok_or("usage: route <key> <access>")?;
                let access: usize = parse(args.get(1), "access switch")?;
                let net = self.net()?;
                let pos = net.position_of_id(&DataId::new(key));
                let route = gred::plane::forwarding::route(
                    net.dataplanes(),
                    access,
                    pos,
                    &DataId::new(key),
                )
                .map_err(|e| e.to_string())?;
                Ok(format!(
                    "switches {:?} ({} hops, {} greedy steps) -> {}",
                    route.switches,
                    route.physical_hops(),
                    route.overlay_hops(),
                    route.server
                ))
            }
            "extend" => {
                let switch: usize = parse(args.first(), "switch")?;
                let index: usize = parse(args.get(1), "server index")?;
                let takeover = self
                    .net()?
                    .extend_range(ServerId { switch, index })
                    .map_err(|e| e.to_string())?;
                Ok(format!("range extended to {takeover}"))
            }
            "join" => {
                if args.is_empty() {
                    return Err("usage: join <neighbor> [neighbor...]".into());
                }
                let links: Vec<usize> = args
                    .iter()
                    .map(|a| a.parse().map_err(|_| format!("bad switch {a:?}")))
                    .collect::<Result<_, _>>()?;
                let net = self.net()?;
                let servers = net.pool().servers_at(links[0]).max(1);
                let new = net
                    .add_switch(&links, vec![u64::MAX; servers])
                    .map_err(|e| e.to_string())?;
                Ok(format!("switch {new} joined (linked to {links:?})"))
            }
            "leave" => {
                let switch: usize = parse(args.first(), "switch")?;
                self.net()?
                    .remove_switch(switch)
                    .map_err(|e| e.to_string())?;
                Ok(format!("switch {switch} left; its data migrated"))
            }
            "stats" => {
                let net = self.net()?;
                let t = net.table_stats();
                let topo = net.topology().stats();
                Ok(format!(
                    "switches {} | links {} | diameter {} | items {} | entries/switch mean {:.1} (max {})",
                    topo.switches,
                    topo.links,
                    topo.diameter.map_or("n/a".into(), |d| d.to_string()),
                    net.store().total_items(),
                    t.mean,
                    t.max
                ))
            }
            "loads" => {
                let net = self.net()?;
                let mut loads: Vec<(ServerId, u64)> = net
                    .server_loads()
                    .into_iter()
                    .filter(|&(_, l)| l > 0)
                    .collect();
                loads.sort_by_key(|&(_, l)| std::cmp::Reverse(l));
                let mut out = String::new();
                for (server, load) in loads.iter().take(10) {
                    out.push_str(&format!("{server}: {load}\n"));
                }
                if loads.is_empty() {
                    out.push_str("no data stored yet\n");
                }
                out.push_str(&format!("({} loaded servers total)", loads.len()));
                Ok(out)
            }
            "quit" | "exit" => Err("__quit__".into()),
            other => Err(format!("unknown command {other:?}; try: help")),
        }
    }
}

fn parse<T: std::str::FromStr>(arg: Option<&&str>, what: &str) -> Result<T, String> {
    arg.ok_or_else(|| format!("missing {what}"))?
        .parse()
        .map_err(|_| format!("bad {what}"))
}

/// Executes one `--live` command against running endpoints and returns
/// the text to print. `addrs` is the comma-separated address list that
/// followed `--live`; `args` is the verb and its operands.
fn live_execute(addrs: &str, args: &[&str]) -> Result<String, String> {
    let addrs = parse_addrs(addrs)?;
    let verb = *args.first().ok_or(LIVE_USAGE)?;
    match verb {
        "stats" => {
            let mut out = String::new();
            for (i, snap) in scrape_all(&addrs)?.iter().enumerate() {
                if i > 0 {
                    out.push('\n');
                }
                out.push_str(&format_snapshot(snap));
            }
            Ok(out)
        }
        "health" => {
            let snaps = scrape_all(&addrs)?;
            let health = ClusterHealth::aggregate(&snaps);
            let mut out = health.to_string();
            for (reporter, peer) in &health.suspects {
                out.push_str(&format!("\n  suspect: {reporter} -> {peer}"));
            }
            if let Some(path) = args.iter().position(|a| *a == "--json").map(|i| args.get(i + 1)) {
                let path = path.ok_or("--json needs a path")?;
                std::fs::write(path, health.to_json(&snaps)).map_err(|e| e.to_string())?;
                out.push_str(&format!("\nwrote {path}"));
            }
            Ok(out)
        }
        "ping" => {
            let mut out = String::new();
            let mut any_alive = false;
            for (i, addr) in addrs.iter().enumerate() {
                if i > 0 {
                    out.push('\n');
                }
                match admin_call(*addr, &AdminOp::Ping) {
                    Ok(reply) => {
                        any_alive = true;
                        out.push_str(&format!("{addr}: {}", reply.message));
                    }
                    Err(e) => out.push_str(&format!("{addr}: unreachable ({e})")),
                }
            }
            // Dead nodes are per-line findings; a ping that reached
            // *nobody* is a failed probe and must exit nonzero.
            if any_alive {
                Ok(out)
            } else {
                Err(out)
            }
        }
        "admin" => {
            let op = parse_admin_verb(&args[1..])?;
            let reply = admin_call(addrs[0], &op).map_err(|e| e.to_string())?;
            if reply.ok {
                Ok(reply.message)
            } else {
                Err(reply.message)
            }
        }
        other => Err(format!("unknown live verb {other:?}\n{LIVE_USAGE}")),
    }
}

/// Parses an admin verb and its operands into an [`AdminOp`].
fn parse_admin_verb(args: &[&str]) -> Result<AdminOp, String> {
    let verb = *args.first().ok_or("usage: admin <ping|crash|restart|drain|join|leave> [args]")?;
    match verb {
        "ping" => Ok(AdminOp::Ping),
        "crash" => Ok(AdminOp::Crash {
            switch: parse(args.get(1), "switch")?,
        }),
        "restart" => Ok(AdminOp::Restart {
            switch: parse(args.get(1), "switch")?,
        }),
        "drain" => Ok(AdminOp::Drain),
        "join" => {
            let neighbors = parse_list(args.get(1), "neighbors")?;
            let capacities = parse_list(args.get(2), "capacities")?;
            Ok(AdminOp::Join {
                neighbors,
                capacities,
            })
        }
        "leave" => Ok(AdminOp::Leave {
            switch: parse(args.get(1), "switch")?,
        }),
        other => Err(format!("unknown admin verb {other:?}")),
    }
}

fn parse_list<T: std::str::FromStr>(arg: Option<&&str>, what: &str) -> Result<Vec<T>, String> {
    arg.ok_or_else(|| format!("missing {what} (comma-separated)"))?
        .split(',')
        .map(|p| p.parse().map_err(|_| format!("bad {what} entry {p:?}")))
        .collect()
}

fn parse_addrs(addrs: &str) -> Result<Vec<SocketAddr>, String> {
    let parsed: Result<Vec<SocketAddr>, _> = addrs.split(',').map(|a| a.trim().parse()).collect();
    let parsed = parsed.map_err(|_| format!("bad address list {addrs:?}"))?;
    if parsed.is_empty() {
        return Err("empty address list".into());
    }
    Ok(parsed)
}

/// Scrapes every address with a fresh single-node client, purely over
/// the wire.
fn scrape_all(addrs: &[SocketAddr]) -> Result<Vec<StatsSnapshot>, String> {
    addrs
        .iter()
        .map(|&addr| {
            let mut client =
                Client::connect(addr, ClientConfig::default()).map_err(|e| e.to_string())?;
            client.scrape().map_err(|e| format!("{addr}: {e}"))
        })
        .collect()
}

/// Renders one node's snapshot as an operator-readable block.
fn format_snapshot(snap: &StatsSnapshot) -> String {
    let mut out = format!(
        "node {}: up {}ms | {} requests ({} delivered, {} errors) | \
         {} stored | {} forwarded, {} relayed, {} detours | \
         cache {}h/{}m ({} evictions, {} invalidations rx) | \
         {} conns, {} queued bytes, {} workers | {} table rows",
        snap.switch,
        snap.uptime_ms,
        snap.requests,
        snap.delivered,
        snap.errors,
        snap.stored_items,
        snap.forwarded,
        snap.relayed,
        snap.hot.detour_forwards,
        snap.hot.cache_hits,
        snap.hot.cache_misses,
        snap.hot.cache_evictions,
        snap.hot.invalidations_rx,
        snap.open_connections,
        snap.queued_bytes,
        snap.dispatch_workers,
        snap.table_rows,
    );
    for link in &snap.links {
        out.push_str(&format!(
            "\n  link -> {}: {}, {} reconnects{}",
            link.peer,
            if link.connected { "connected" } else { "down" },
            link.reconnects,
            if link.suspect_ms_left > 0 {
                format!(", suspect for {}ms", link.suspect_ms_left)
            } else {
                String::new()
            },
        ));
    }
    out
}

const LIVE_USAGE: &str = "\
usage: gredctl --live <addr>[,addr...] <verb>
verbs:
  stats                         scrape and print each node's snapshot
  health [--json PATH]          aggregate a cluster health view
  ping                          admin-ping each address
  admin <verb> [args]           send a lifecycle verb to the first address
    admin crash <switch> | restart <switch> | drain
    admin join <n1,n2,...> <cap1,cap2,...> | leave <switch>";

const HELP: &str = "\
commands:
  build <switches> <servers-per-switch> [seed]   create a Waxman edge network
  place <key> <value> <access-switch>            store a value
  get <key> <access-switch>                      retrieve a value
  route <key> <access-switch>                    show the greedy route
  extend <switch> <server-index>                 range-extend a server
  join <neighbor> [neighbor...]                  add an edge node
  leave <switch>                                 remove an edge node
  stats | loads | help | quit
live-cluster mode: gredctl --live <addr>[,addr...] <stats|health|ping|admin ...>";

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().is_some_and(|a| a == "--live") {
        let Some(addrs) = argv.get(1) else {
            eprintln!("{LIVE_USAGE}");
            std::process::exit(2);
        };
        let args: Vec<&str> = argv[2..].iter().map(String::as_str).collect();
        match live_execute(addrs, &args) {
            Ok(out) => println!("{out}"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    let stdin = std::io::stdin();
    let interactive = atty_stdin();
    let mut console = Console::default();
    if interactive {
        println!("gredctl — type `help` for commands");
    }
    loop {
        if interactive {
            print!("gred> ");
            let _ = std::io::stdout().flush();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match console.execute(line) {
            Ok(reply) if reply.is_empty() => {}
            Ok(reply) => println!("{reply}"),
            Err(e) if e == "__quit__" => break,
            Err(e) => println!("error: {e}"),
        }
    }
}

/// Conservative interactivity check without a libc dependency: honor an
/// explicit opt-out and otherwise assume piped use when stdin is not a
/// terminal-ish environment variable setup. Scripted runs set no prompt.
fn atty_stdin() -> bool {
    std::env::var_os("GREDCTL_INTERACTIVE").is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_script(lines: &[&str]) -> Vec<Result<String, String>> {
        let mut console = Console::default();
        lines.iter().map(|l| console.execute(l)).collect()
    }

    #[test]
    fn commands_require_a_network() {
        let out = run_script(&["stats"]);
        assert!(out[0].as_ref().unwrap_err().contains("no network"));
    }

    #[test]
    fn build_place_get_round_trip() {
        let out = run_script(&["build 10 2 5", "place demo/key hello 0", "get demo/key 7"]);
        assert!(out[0].as_ref().unwrap().contains("network up: 10 switches"));
        assert!(out[1].as_ref().unwrap().contains("stored on s"));
        assert!(out[2].as_ref().unwrap().contains("hello"));
    }

    #[test]
    fn route_and_stats_and_loads() {
        let out = run_script(&[
            "build 8 2 3",
            "place a/b v 0",
            "route a/b 1",
            "stats",
            "loads",
        ]);
        assert!(out[2].as_ref().unwrap().contains("greedy steps"));
        assert!(out[3].as_ref().unwrap().contains("items 1"));
        assert!(out[4].as_ref().unwrap().contains(": 1"));
    }

    #[test]
    fn join_and_leave() {
        let out = run_script(&["build 8 2 3", "join 0 4", "leave 8"]);
        assert!(out[1].as_ref().unwrap().contains("switch 8 joined"));
        assert!(out[2].as_ref().unwrap().contains("switch 8 left"));
    }

    #[test]
    fn extend_command() {
        let out = run_script(&["build 6 2 1", "extend 0 0"]);
        assert!(out[1].as_ref().unwrap().contains("range extended to s"));
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let out = run_script(&["build 5 1 1", "get missing/key 0", "bogus", "place x"]);
        assert!(out[1].as_ref().unwrap_err().contains("not found"));
        assert!(out[2].as_ref().unwrap_err().contains("unknown command"));
        assert!(out[3].as_ref().unwrap_err().contains("usage"));
    }

    #[test]
    fn quit_sentinel_and_blank_lines() {
        let mut console = Console::default();
        assert_eq!(console.execute(""), Ok(String::new()));
        assert_eq!(console.execute("quit"), Err("__quit__".into()));
    }

    #[test]
    fn help_lists_commands() {
        let out = run_script(&["help"]);
        let help = out[0].as_ref().unwrap();
        for cmd in ["build", "place", "get", "route", "extend", "join", "leave"] {
            assert!(help.contains(cmd), "help missing {cmd}");
        }
    }

    #[test]
    fn admin_verbs_parse() {
        assert_eq!(parse_admin_verb(&["ping"]), Ok(AdminOp::Ping));
        assert_eq!(parse_admin_verb(&["drain"]), Ok(AdminOp::Drain));
        assert_eq!(
            parse_admin_verb(&["crash", "3"]),
            Ok(AdminOp::Crash { switch: 3 })
        );
        assert_eq!(
            parse_admin_verb(&["join", "0,2", "100,200"]),
            Ok(AdminOp::Join {
                neighbors: vec![0, 2],
                capacities: vec![100, 200],
            })
        );
        assert!(parse_admin_verb(&["bogus"]).is_err());
        assert!(parse_admin_verb(&["crash"]).is_err());
    }

    #[test]
    fn bad_live_input_is_reported() {
        assert!(parse_addrs("not-an-addr").is_err());
        assert!(parse_addrs("").is_err());
        let err = live_execute("127.0.0.1:1", &["bogus"]).unwrap_err();
        assert!(err.contains("unknown live verb"), "{err}");
    }

    /// The acceptance scenario: `gredctl --live` against a running
    /// loopback cluster prints per-node, per-link, and cluster-health
    /// snapshots scraped purely over the wire, and admin verbs land on
    /// the admin endpoint.
    #[test]
    fn live_mode_drives_a_running_cluster() {
        use gred_cluster::{AdminServer, Cluster, ClusterConfig};

        let (topo, _) = waxman_topology(&WaxmanConfig::with_switches(6, 11));
        let pool = ServerPool::uniform(6, 2, u64::MAX);
        let mut net =
            GredNetwork::build(topo, pool, GredConfig::default().seeded(11)).unwrap();
        for i in 0..8 {
            net.place(
                &DataId::new(format!("live/{i}")),
                format!("v{i}").into_bytes(),
                i % 6,
            )
            .unwrap();
        }
        let cluster = Cluster::boot(&net, ClusterConfig::default()).unwrap();
        let addrs: Vec<String> = (0..6).map(|s| cluster.addr(s).to_string()).collect();
        let addrs = addrs.join(",");

        let stats = live_execute(&addrs, &["stats"]).unwrap();
        for s in 0..6 {
            assert!(stats.contains(&format!("node {s}:")), "{stats}");
        }
        assert!(stats.contains("link ->"), "per-link counters: {stats}");

        let health = live_execute(&addrs, &["health"]).unwrap();
        assert!(health.contains("6 nodes:"), "{health}");
        assert!(health.contains("suspect links"), "{health}");

        let pong = live_execute(&addrs, &["ping"]).unwrap();
        assert_eq!(pong.lines().count(), 6, "{pong}");
        assert!(pong.contains("pong"), "{pong}");

        let admin = AdminServer::spawn(cluster, net).unwrap();
        let admin_addr = admin.addr().to_string();
        let out = live_execute(&admin_addr, &["admin", "ping"]).unwrap();
        assert!(out.contains("6 live nodes"), "{out}");
        let out = live_execute(&admin_addr, &["admin", "drain"]).unwrap();
        assert!(out.contains("drained"), "{out}");
        let err = live_execute(&admin_addr, &["admin", "restart", "2"]).unwrap_err();
        assert!(err.contains("still running"), "{err}");
        admin.shutdown();
    }
}
