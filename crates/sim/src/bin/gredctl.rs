//! `gredctl` — an interactive (and scriptable) console for driving a GRED
//! network: build a topology, place and retrieve data, trigger range
//! extensions, join/leave nodes, and inspect state.
//!
//! ```text
//! cargo run --release -p gred-sim --bin gredctl
//! gred> build 20 4 7
//! gred> place sensors/cam-1 hello 0
//! gred> get sensors/cam-1 13
//! gred> stats
//! gred> quit
//! ```
//!
//! Reads commands from stdin (one per line, `#` comments ignored), so it
//! also works in pipelines: `echo -e "build 10 2\nstats" | gredctl`.

use gred::{GredConfig, GredNetwork};
use gred_hash::DataId;
use gred_net::{waxman_topology, ServerId, ServerPool, WaxmanConfig};
use std::io::{BufRead, Write};

/// The console's mutable state.
#[derive(Default)]
struct Console {
    net: Option<GredNetwork>,
}

impl Console {
    fn net(&mut self) -> Result<&mut GredNetwork, String> {
        self.net
            .as_mut()
            .ok_or_else(|| "no network yet — run: build <switches> <servers> [seed]".to_string())
    }

    /// Executes one command line, returning the text to print.
    fn execute(&mut self, line: &str) -> Result<String, String> {
        let mut parts = line.split_whitespace();
        let Some(cmd) = parts.next() else {
            return Ok(String::new());
        };
        let args: Vec<&str> = parts.collect();
        match cmd {
            "help" => Ok(HELP.to_string()),
            "build" => {
                let switches: usize = parse(args.first(), "switches")?;
                let servers: usize = parse(args.get(1), "servers-per-switch")?;
                let seed: u64 = args
                    .get(2)
                    .map_or(Ok(1), |s| s.parse().map_err(|_| format!("bad seed {s:?}")))?;
                let (topo, _) = waxman_topology(&WaxmanConfig::with_switches(switches, seed));
                let pool = ServerPool::uniform(switches, servers, u64::MAX);
                let net = GredNetwork::build(topo, pool, GredConfig::default().seeded(seed))
                    .map_err(|e| e.to_string())?;
                let reply = format!(
                    "network up: {} switches, {} servers, {} DT edges",
                    net.topology().switch_count(),
                    net.pool().total_servers(),
                    net.dt().edges().len()
                );
                self.net = Some(net);
                Ok(reply)
            }
            "place" => {
                let key = *args.first().ok_or("usage: place <key> <value> <access>")?;
                let value = *args.get(1).ok_or("usage: place <key> <value> <access>")?;
                let access: usize = parse(args.get(2), "access switch")?;
                let receipt = self
                    .net()?
                    .place(&DataId::new(key), value.as_bytes().to_vec(), access)
                    .map_err(|e| e.to_string())?;
                Ok(format!(
                    "stored on {} via {} hops{}",
                    receipt.server,
                    receipt.route.physical_hops(),
                    if receipt.extended {
                        " (range-extended)"
                    } else {
                        ""
                    }
                ))
            }
            "get" => {
                let key = *args.first().ok_or("usage: get <key> <access>")?;
                let access: usize = parse(args.get(1), "access switch")?;
                let got = self
                    .net()?
                    .retrieve(&DataId::new(key), access)
                    .map_err(|e| e.to_string())?;
                Ok(format!(
                    "{} ({} bytes) from {} in {} hops",
                    String::from_utf8_lossy(&got.payload),
                    got.payload.len(),
                    got.server,
                    got.total_hops()
                ))
            }
            "route" => {
                let key = *args.first().ok_or("usage: route <key> <access>")?;
                let access: usize = parse(args.get(1), "access switch")?;
                let net = self.net()?;
                let pos = net.position_of_id(&DataId::new(key));
                let route = gred::plane::forwarding::route(
                    net.dataplanes(),
                    access,
                    pos,
                    &DataId::new(key),
                )
                .map_err(|e| e.to_string())?;
                Ok(format!(
                    "switches {:?} ({} hops, {} greedy steps) -> {}",
                    route.switches,
                    route.physical_hops(),
                    route.overlay_hops(),
                    route.server
                ))
            }
            "extend" => {
                let switch: usize = parse(args.first(), "switch")?;
                let index: usize = parse(args.get(1), "server index")?;
                let takeover = self
                    .net()?
                    .extend_range(ServerId { switch, index })
                    .map_err(|e| e.to_string())?;
                Ok(format!("range extended to {takeover}"))
            }
            "join" => {
                if args.is_empty() {
                    return Err("usage: join <neighbor> [neighbor...]".into());
                }
                let links: Vec<usize> = args
                    .iter()
                    .map(|a| a.parse().map_err(|_| format!("bad switch {a:?}")))
                    .collect::<Result<_, _>>()?;
                let net = self.net()?;
                let servers = net.pool().servers_at(links[0]).max(1);
                let new = net
                    .add_switch(&links, vec![u64::MAX; servers])
                    .map_err(|e| e.to_string())?;
                Ok(format!("switch {new} joined (linked to {links:?})"))
            }
            "leave" => {
                let switch: usize = parse(args.first(), "switch")?;
                self.net()?
                    .remove_switch(switch)
                    .map_err(|e| e.to_string())?;
                Ok(format!("switch {switch} left; its data migrated"))
            }
            "stats" => {
                let net = self.net()?;
                let t = net.table_stats();
                let topo = net.topology().stats();
                Ok(format!(
                    "switches {} | links {} | diameter {} | items {} | entries/switch mean {:.1} (max {})",
                    topo.switches,
                    topo.links,
                    topo.diameter.map_or("n/a".into(), |d| d.to_string()),
                    net.store().total_items(),
                    t.mean,
                    t.max
                ))
            }
            "loads" => {
                let net = self.net()?;
                let mut loads: Vec<(ServerId, u64)> = net
                    .server_loads()
                    .into_iter()
                    .filter(|&(_, l)| l > 0)
                    .collect();
                loads.sort_by_key(|&(_, l)| std::cmp::Reverse(l));
                let mut out = String::new();
                for (server, load) in loads.iter().take(10) {
                    out.push_str(&format!("{server}: {load}\n"));
                }
                if loads.is_empty() {
                    out.push_str("no data stored yet\n");
                }
                out.push_str(&format!("({} loaded servers total)", loads.len()));
                Ok(out)
            }
            "quit" | "exit" => Err("__quit__".into()),
            other => Err(format!("unknown command {other:?}; try: help")),
        }
    }
}

fn parse<T: std::str::FromStr>(arg: Option<&&str>, what: &str) -> Result<T, String> {
    arg.ok_or_else(|| format!("missing {what}"))?
        .parse()
        .map_err(|_| format!("bad {what}"))
}

const HELP: &str = "\
commands:
  build <switches> <servers-per-switch> [seed]   create a Waxman edge network
  place <key> <value> <access-switch>            store a value
  get <key> <access-switch>                      retrieve a value
  route <key> <access-switch>                    show the greedy route
  extend <switch> <server-index>                 range-extend a server
  join <neighbor> [neighbor...]                  add an edge node
  leave <switch>                                 remove an edge node
  stats | loads | help | quit";

fn main() {
    let stdin = std::io::stdin();
    let interactive = atty_stdin();
    let mut console = Console::default();
    if interactive {
        println!("gredctl — type `help` for commands");
    }
    loop {
        if interactive {
            print!("gred> ");
            let _ = std::io::stdout().flush();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match console.execute(line) {
            Ok(reply) if reply.is_empty() => {}
            Ok(reply) => println!("{reply}"),
            Err(e) if e == "__quit__" => break,
            Err(e) => println!("error: {e}"),
        }
    }
}

/// Conservative interactivity check without a libc dependency: honor an
/// explicit opt-out and otherwise assume piped use when stdin is not a
/// terminal-ish environment variable setup. Scripted runs set no prompt.
fn atty_stdin() -> bool {
    std::env::var_os("GREDCTL_INTERACTIVE").is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_script(lines: &[&str]) -> Vec<Result<String, String>> {
        let mut console = Console::default();
        lines.iter().map(|l| console.execute(l)).collect()
    }

    #[test]
    fn commands_require_a_network() {
        let out = run_script(&["stats"]);
        assert!(out[0].as_ref().unwrap_err().contains("no network"));
    }

    #[test]
    fn build_place_get_round_trip() {
        let out = run_script(&["build 10 2 5", "place demo/key hello 0", "get demo/key 7"]);
        assert!(out[0].as_ref().unwrap().contains("network up: 10 switches"));
        assert!(out[1].as_ref().unwrap().contains("stored on s"));
        assert!(out[2].as_ref().unwrap().contains("hello"));
    }

    #[test]
    fn route_and_stats_and_loads() {
        let out = run_script(&[
            "build 8 2 3",
            "place a/b v 0",
            "route a/b 1",
            "stats",
            "loads",
        ]);
        assert!(out[2].as_ref().unwrap().contains("greedy steps"));
        assert!(out[3].as_ref().unwrap().contains("items 1"));
        assert!(out[4].as_ref().unwrap().contains(": 1"));
    }

    #[test]
    fn join_and_leave() {
        let out = run_script(&["build 8 2 3", "join 0 4", "leave 8"]);
        assert!(out[1].as_ref().unwrap().contains("switch 8 joined"));
        assert!(out[2].as_ref().unwrap().contains("switch 8 left"));
    }

    #[test]
    fn extend_command() {
        let out = run_script(&["build 6 2 1", "extend 0 0"]);
        assert!(out[1].as_ref().unwrap().contains("range extended to s"));
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let out = run_script(&["build 5 1 1", "get missing/key 0", "bogus", "place x"]);
        assert!(out[1].as_ref().unwrap_err().contains("not found"));
        assert!(out[2].as_ref().unwrap_err().contains("unknown command"));
        assert!(out[3].as_ref().unwrap_err().contains("usage"));
    }

    #[test]
    fn quit_sentinel_and_blank_lines() {
        let mut console = Console::default();
        assert_eq!(console.execute(""), Ok(String::new()));
        assert_eq!(console.execute("quit"), Err("__quit__".into()));
    }

    #[test]
    fn help_lists_commands() {
        let out = run_script(&["help"]);
        let help = out[0].as_ref().unwrap();
        for cmd in ["build", "place", "get", "route", "extend", "join", "leave"] {
            assert!(help.contains(cmd), "help missing {cmd}");
        }
    }
}
