//! `repro` — regenerate every figure of the GRED paper, plus the
//! repository's extension experiments.
//!
//! ```text
//! repro <experiment> [--paper] [--csv <dir>] [--threads <n>]
//! repro soak [--seed <n>] [--ops <n>] [--switches <n>]
//! repro cluster [--seed <n>] [--ops <n>] [--switches <n>]
//! repro chaos [--seed <n>] [--ops <n>] [--switches <n>] [--kills <n>]
//!
//! experiments: fig7a fig7b fig8 fig9a fig9b fig9c fig9d
//!              fig11a fig11b fig11c tables churn churn-owners
//!              embedding qdelay availability hotspot contention fload
//!              cdf overhead hetero build-report all
//!
//! --paper       run at the paper's full scale (minutes) instead of the
//!               quick preset (seconds)
//! --csv <dir>   also write each experiment's rows to <dir>/<name>.csv
//! --threads <n> worker threads for build-report (default: the machine's
//!               available parallelism, capped at 8)
//!
//! `soak` drives the gred-testkit model-based harness through one long
//! seeded schedule (default seed 2019, 2000 ops, 12 switches), checking
//! every invariant after every operation. On failure it prints the
//! failing step, the violations, a one-line reproduction command, and a
//! greedily shrunk (drop-one minimal) schedule, then exits nonzero.
//!
//! `cluster` boots every switch of a seeded network as a real TCP node
//! on loopback (gred-cluster), places `--ops` ids through rotating
//! access nodes, retrieves them all back over the sockets, verifies each
//! ack against the in-process model, and shuts the cluster down
//! gracefully. Any lost request, wrong payload, or wrong owner exits
//! nonzero.
//!
//! `chaos` runs the crash-tolerance acceptance scenario: a loopback
//! cluster behind a per-link fault fabric, a seeded replicated workload
//! (`k = 2`, quorum acks), seeded node kills and link faults mid-run,
//! operator-style crash recovery, and a final audit of every
//! acknowledged write. A lost acknowledged write exits 1. The fault
//! plan and workload are pure functions of `--seed`/`--ops`, so the
//! printed repro line replays the same faults. Set `GRED_CHAOS_DIR` to
//! also write the fault schedule to a file (CI uploads it on failure).
//! ```

use gred_net::LatencyModel;
use gred_sim::experiments::{
    availability, churn, contention, control_overhead, delay, embedding, forwarding_load,
    heterogeneity, hotspot, load, stretch, table_entries, testbed,
};
use gred_sim::report::{f3, render_csv, render_table};
use std::path::PathBuf;

const SEED: u64 = 2019;

struct Scale {
    stretch_sizes: Vec<usize>,
    stretch_items: usize,
    degree_switches: usize,
    degrees: Vec<usize>,
    entry_sizes: Vec<usize>,
    load_servers: Vec<usize>,
    load_items: usize,
    item_sweep: Vec<usize>,
    sweep_servers: usize,
    iteration_sweep: Vec<usize>,
    testbed_requests: usize,
    testbed_items: usize,
    delay_requests: Vec<usize>,
    churn_sizes: Vec<usize>,
    churn_items: usize,
    build_switches: usize,
}

impl Scale {
    fn quick() -> Self {
        Scale {
            stretch_sizes: vec![20, 40, 60],
            stretch_items: 50,
            degree_switches: 40,
            degrees: vec![3, 5, 7, 10],
            entry_sizes: vec![20, 40, 60, 80],
            load_servers: vec![200, 400, 600],
            load_items: 20_000,
            item_sweep: vec![20_000, 50_000, 100_000],
            sweep_servers: 300,
            iteration_sweep: vec![0, 10, 20, 50],
            testbed_requests: 100,
            testbed_items: 5_000,
            delay_requests: vec![100, 400, 1000],
            churn_sizes: vec![20, 40],
            churn_items: 500,
            build_switches: 60,
        }
    }

    /// The paper's parameters (Section VII-B).
    fn paper() -> Self {
        Scale {
            stretch_sizes: vec![20, 60, 100, 140, 180],
            stretch_items: 100,
            degree_switches: 100,
            degrees: vec![3, 4, 5, 6, 7, 8, 9, 10],
            entry_sizes: vec![20, 60, 100, 140, 180],
            load_servers: vec![200, 400, 600, 800, 1000],
            load_items: 100_000,
            item_sweep: vec![100_000, 250_000, 500_000, 750_000, 1_000_000],
            sweep_servers: 1000,
            iteration_sweep: vec![0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100],
            testbed_requests: 100,
            testbed_items: 10_000,
            delay_requests: vec![100, 200, 400, 600, 800, 1000],
            churn_sizes: vec![20, 60, 100],
            churn_items: 2_000,
            build_switches: 200,
        }
    }
}

/// Table sink: always prints; optionally writes CSV next to it.
struct Output {
    csv_dir: Option<PathBuf>,
}

impl Output {
    fn emit(&self, name: &str, title: &str, headers: &[&str], rows: Vec<Vec<String>>) {
        println!("\n== {title} ==");
        println!("{}", render_table(headers, &rows));
        if let Some(dir) = &self.csv_dir {
            std::fs::create_dir_all(dir).expect("csv dir is creatable");
            let path = dir.join(format!("{name}.csv"));
            std::fs::write(&path, render_csv(headers, &rows)).expect("csv is writable");
            eprintln!("wrote {}", path.display());
        }
    }
}

fn stretch_rows(rows: &[stretch::StretchRow]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| vec![r.x.to_string(), r.system.clone(), f3(r.mean), f3(r.ci90)])
        .collect()
}

fn load_rows(rows: &[load::LoadRow]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| vec![r.x.to_string(), r.system.clone(), f3(r.max_avg)])
        .collect()
}

fn run(experiment: &str, scale: &Scale, out: &Output, threads: usize) {
    match experiment {
        "fig7a" | "fig7b" => {
            let rows =
                testbed::testbed_experiment(scale.testbed_requests, scale.testbed_items, SEED);
            out.emit(
                "fig7",
                "Fig. 7(a)/(b): P4 testbed — stretch and load balance",
                &["system", "mean stretch", "max/avg"],
                rows.iter()
                    .map(|r| vec![r.system.clone(), f3(r.stretch), f3(r.max_avg)])
                    .collect(),
            );
        }
        "fig8" => {
            let rows = delay::response_delay(&scale.delay_requests, LatencyModel::default(), SEED);
            out.emit(
                "fig8",
                "Fig. 8: average response delay vs retrieval requests",
                &["requests", "system", "avg delay (us)"],
                rows.iter()
                    .map(|r| vec![r.requests.to_string(), r.system.clone(), f3(r.avg_delay_us)])
                    .collect(),
            );
        }
        "fig9a" => {
            let rows =
                stretch::stretch_vs_network_size(&scale.stretch_sizes, scale.stretch_items, SEED);
            out.emit(
                "fig9a",
                "Fig. 9(a): routing stretch vs network size",
                &["switches", "system", "mean stretch", "ci90"],
                stretch_rows(&rows),
            );
        }
        "fig9b" => {
            let rows = stretch::stretch_vs_min_degree(
                &scale.degrees,
                scale.degree_switches,
                scale.stretch_items,
                SEED,
            );
            out.emit(
                "fig9b",
                "Fig. 9(b): routing stretch vs min degree",
                &["min degree", "system", "mean stretch", "ci90"],
                stretch_rows(&rows),
            );
        }
        "fig9c" => {
            let rows =
                stretch::stretch_with_extension(&scale.stretch_sizes, scale.stretch_items, SEED);
            out.emit(
                "fig9c",
                "Fig. 9(c): stretch with range extension",
                &["switches", "system", "mean stretch", "ci90"],
                stretch_rows(&rows),
            );
        }
        "fig9d" => {
            let rows = table_entries::entries_vs_network_size(&scale.entry_sizes, SEED);
            out.emit(
                "fig9d",
                "Fig. 9(d): forwarding entries per switch vs network size",
                &["switches", "mean entries", "ci90", "min", "max"],
                rows.iter()
                    .map(|r| {
                        vec![
                            r.switches.to_string(),
                            f3(r.mean),
                            f3(r.ci90),
                            r.min.to_string(),
                            r.max.to_string(),
                        ]
                    })
                    .collect(),
            );
        }
        "fig11a" => {
            let rows = load::load_vs_network_size(&scale.load_servers, scale.load_items, SEED);
            out.emit(
                "fig11a",
                "Fig. 11(a): load balance vs number of servers",
                &["servers", "system", "max/avg"],
                load_rows(&rows),
            );
        }
        "fig11b" => {
            let rows = load::load_vs_items(&scale.item_sweep, scale.sweep_servers, SEED);
            out.emit(
                "fig11b",
                "Fig. 11(b): load balance vs number of items",
                &["items", "system", "max/avg"],
                load_rows(&rows),
            );
        }
        "fig11c" => {
            let rows = load::load_vs_iterations(
                &scale.iteration_sweep,
                scale.load_items,
                scale.sweep_servers,
                SEED,
            );
            out.emit(
                "fig11c",
                "Fig. 11(c): load balance vs iterations T",
                &["T", "system", "max/avg"],
                load_rows(&rows),
            );
        }
        "tables" => print_extension_tables(),
        "qdelay" => {
            let rows = delay::response_delay_with_queueing(
                &scale.delay_requests,
                LatencyModel::default(),
                50_000.0, // 50 ms arrival window: visible queueing at 1000 requests
                SEED,
            );
            out.emit(
                "qdelay",
                "Extension: response delay with FIFO server queueing",
                &["requests", "system", "avg delay (us)"],
                rows.iter()
                    .map(|r| vec![r.requests.to_string(), r.system.clone(), f3(r.avg_delay_us)])
                    .collect(),
            );
        }
        "hetero" => {
            let rows = heterogeneity::heterogeneous_load(25, scale.load_items.min(30_000), SEED);
            out.emit(
                "hetero",
                "Extension: heterogeneous server counts — why range extension exists",
                &["system", "per-server max/avg"],
                rows.iter()
                    .map(|r| vec![r.system.clone(), f3(r.max_avg)])
                    .collect(),
            );
        }
        "overhead" => {
            let rows = control_overhead::join_overhead(&scale.churn_sizes, SEED);
            out.emit(
                "overhead",
                "Extension: control-plane update footprint of a join",
                &[
                    "switches",
                    "switches touched",
                    "entry delta",
                    "newcomer entries",
                ],
                rows.iter()
                    .map(|r| {
                        vec![
                            r.switches.to_string(),
                            r.switches_touched.to_string(),
                            r.entry_delta.to_string(),
                            r.newcomer_entries.to_string(),
                        ]
                    })
                    .collect(),
            );
        }
        "cdf" => {
            use gred_sim::trace::TraceCollector;
            use gred_sim::workload::{AccessPicker, ItemGenerator};
            let (topo, pool) = gred_sim::experiments::substrate(60, 10, 3, SEED);
            let net =
                gred::GredNetwork::build(topo, pool, gred::GredConfig::default().seeded(SEED))
                    .expect("builds");
            let mut traces = TraceCollector::new();
            let mut gen = ItemGenerator::new("cdf");
            let mut picker = AccessPicker::new(net.members(), SEED);
            for _ in 0..scale.load_items.min(2_000) {
                traces.trace_request(&net, &gen.next_id(), picker.pick());
            }
            out.emit(
                "cdf",
                "Extension: GRED per-request stretch distribution",
                &["quantile", "stretch"],
                [0.5, 0.9, 0.95, 0.99, 1.0]
                    .iter()
                    .map(|&q| vec![format!("p{:.0}", q * 100.0), f3(traces.stretch_quantile(q))])
                    .collect(),
            );
        }
        "fload" => {
            let rows = forwarding_load::forwarding_load(30, 2_000, SEED);
            out.emit(
                "fload",
                "Extension: per-switch forwarding-load concentration",
                &["system", "max/avg", "total switch visits"],
                rows.iter()
                    .map(|r| vec![r.system.clone(), f3(r.max_avg), r.total_visits.to_string()])
                    .collect(),
            );
        }
        "contention" => {
            let rows = contention::contention_completion(
                &scale.delay_requests,
                1_000.0,
                gred_net::LinkParams::default(),
                SEED,
            );
            out.emit(
                "contention",
                "Extension: completion time under link contention — GRED vs Chord",
                &["requests", "system", "mean completion (us)"],
                rows.iter()
                    .map(|r| {
                        vec![
                            r.requests.to_string(),
                            r.system.clone(),
                            f3(r.mean_completion_us),
                        ]
                    })
                    .collect(),
            );
        }
        "hotspot" => {
            let rows = hotspot::hotspot_request_load(
                &[0.0, 0.8, 1.2],
                &[1, 4],
                500,
                10,
                scale.load_items.min(10_000),
                SEED,
            );
            out.emit(
                "hotspot",
                "Extension: request load under Zipf popularity, with hot-item replication",
                &["zipf s", "hot replicas", "request max/avg"],
                rows.iter()
                    .map(|r| {
                        vec![
                            format!("{:.1}", r.zipf_s),
                            r.hot_replicas.to_string(),
                            f3(r.request_max_avg),
                        ]
                    })
                    .collect(),
            );
            let flash = hotspot::flash_crowd_request_load(
                500,
                scale.load_items.min(10_000),
                3,
                SEED,
            );
            out.emit(
                "flash_crowd",
                "Extension: regional flash crowd on a cold key, before/after replication",
                &["phase", "request max/avg", "peak share"],
                flash
                    .iter()
                    .map(|r| {
                        vec![
                            r.phase.to_string(),
                            f3(r.request_max_avg),
                            f3(r.peak_share),
                        ]
                    })
                    .collect(),
            );
        }
        "churn-owners" => {
            let rows = churn::owner_churn_comparison(&scale.churn_sizes, 5_000, SEED);
            out.emit(
                "churn_owners",
                "Extension: ownership churn on join — GRED vs Chord",
                &["switches", "system", "moved fraction", "fair share"],
                rows.iter()
                    .map(|r| {
                        vec![
                            r.switches.to_string(),
                            r.system.clone(),
                            f3(r.moved_fraction),
                            f3(r.fair_share),
                        ]
                    })
                    .collect(),
            );
        }
        "availability" => {
            let rows = availability::availability_under_crashes(
                &[1, 2, 3],
                scale.churn_sizes[0] / 5,
                scale.churn_sizes[0],
                scale.churn_items.min(500),
                SEED,
            );
            out.emit(
                "availability",
                "Extension: availability under edge-node crashes",
                &["replicas", "failures", "availability"],
                rows.iter()
                    .map(|r| {
                        vec![
                            r.replicas.to_string(),
                            r.failures.to_string(),
                            f3(r.availability),
                        ]
                    })
                    .collect(),
            );
        }
        "churn" => {
            let rows = churn::churn_migration(&scale.churn_sizes, scale.churn_items, SEED);
            out.emit(
                "churn",
                "Extension: migration volume on join/leave (Section VI claim)",
                &["switches", "event", "moved fraction", "fair share"],
                rows.iter()
                    .map(|r| {
                        vec![
                            r.switches.to_string(),
                            r.event.clone(),
                            f3(r.moved_fraction),
                            f3(r.fair_share),
                        ]
                    })
                    .collect(),
            );
        }
        "embedding" => {
            let rows =
                embedding::embedding_ablation(&scale.stretch_sizes, scale.stretch_items, SEED);
            out.emit(
                "embedding",
                "Ablation: M-position vs oracle vs random coordinates",
                &["switches", "source", "mean stretch", "ci90"],
                rows.iter()
                    .map(|r| {
                        vec![
                            r.switches.to_string(),
                            r.source.clone(),
                            f3(r.mean),
                            f3(r.ci90),
                        ]
                    })
                    .collect(),
            );
        }
        "build-report" => {
            let rows = build_report_rows(scale.build_switches, threads);
            out.emit(
                "build-report",
                "Instrumentation: control-plane build phases by variant and thread count",
                &["variant", "threads", "phase", "items", "wall (ms)"],
                rows,
            );
        }
        other => {
            eprintln!("unknown experiment {other:?}");
            eprintln!(
                "choose one of: fig7a fig7b fig8 fig9a fig9b fig9c fig9d fig11a fig11b fig11c tables churn churn-owners embedding qdelay availability hotspot contention fload cdf overhead hetero build-report soak cluster chaos all"
            );
            std::process::exit(2);
        }
    }
}

/// Paper Tables I/II: the forwarding-rule rewrite a range extension
/// installs, demonstrated live on a 2-switch network.
fn print_extension_tables() {
    use gred::{GredConfig, GredNetwork};
    use gred_net::{ServerId, ServerPool, Topology};

    let topo = Topology::from_links(2, &[(0, 1)]).expect("valid");
    let pool = ServerPool::uniform(2, 3, 1000);
    let mut net = GredNetwork::build(topo, pool, GredConfig::with_iterations(0)).expect("builds");

    println!("\n== Tables I/II: range-extension forwarding entries ==");
    let overloaded = ServerId {
        switch: 0,
        index: 0,
    };
    println!("before extension: traffic for {overloaded} delivered locally");
    let takeover = net.extend_range(overloaded).expect("neighbor has servers");
    println!("after extension:  traffic for {overloaded} rewritten to {takeover}");
    let (neighbors, relays, extensions) = net.dataplanes()[0].entry_breakdown();
    println!(
        "switch 0 tables: {neighbors} neighbor entries, {relays} relay entries, {extensions} extension entry"
    );
}

/// Builds a Waxman network with the exact and landmark control planes
/// (serially and with `threads` workers), applies a churn batch through
/// the incremental delta path, and prints each [`gred::BuildReport`]
/// (human summary + JSON line) plus the per-switch installed-entry
/// distribution, returning per-phase table rows.
fn build_report_rows(switches: usize, threads: usize) -> Vec<Vec<String>> {
    use gred::{GredConfig, GredNetwork, TopologyChange};
    use gred_net::{waxman_topology, ServerPool, WaxmanConfig};

    let mut rows = Vec::new();
    let mut thread_counts = vec![1];
    if threads > 1 {
        thread_counts.push(threads);
    }
    // Enough pivots for a stable embedding, well under the member count.
    let landmarks = (switches / 5).clamp(8, 100);
    for t in thread_counts {
        for variant in ["full", "landmark"] {
            let (topo, _) = waxman_topology(&WaxmanConfig::with_switches(switches, SEED));
            let pool = ServerPool::uniform(switches, 4, 10_000);
            let mut config = GredConfig::default().threads(t);
            if variant == "landmark" {
                config = config.landmarks(landmarks);
            }
            let (net, report) = GredNetwork::build_reported(topo, pool, config)
                .expect("Waxman build succeeds at report scale");
            println!("{}", report.summary());
            println!("{}", report.to_json());
            let stats = net.table_stats();
            println!(
                "{variant} build, {t} threads: per-switch installed entries \
                 min {} / p50 {} / max {} (mean {:.1} over {} switches)",
                stats.min, stats.p50, stats.max, stats.mean, stats.switches
            );
            for phase in &report.phases {
                rows.push(vec![
                    variant.to_string(),
                    t.to_string(),
                    phase.name.to_string(),
                    phase.items.to_string(),
                    f3(phase.wall.as_secs_f64() * 1e3),
                ]);
            }
            rows.push(vec![
                variant.to_string(),
                t.to_string(),
                "total".to_string(),
                switches.to_string(),
                f3(report.total_wall().as_secs_f64() * 1e3),
            ]);
        }
    }

    // The incremental path: absorb a small join batch without a rebuild
    // and report the apply cost next to the build phases it avoids.
    let (topo, _) = waxman_topology(&WaxmanConfig::with_switches(switches, SEED));
    let pool = ServerPool::uniform(switches, 4, 10_000);
    let mut net = GredNetwork::build(topo, pool, GredConfig::default().landmarks(landmarks))
        .expect("Waxman build succeeds at report scale");
    let batch: Vec<TopologyChange> = (0..4)
        .map(|i| TopologyChange::Join {
            links: vec![(i * 37 + 11) % switches, (i * 91 + 3) % switches],
            capacities: vec![10_000],
        })
        .collect();
    let report = net.apply_delta(&batch).expect("churn batch applies");
    println!(
        "delta apply: {} joins, {} affected of {} members ({:.0}% reused), {:.3} ms",
        report.joined.len(),
        report.affected.len(),
        report.members_total,
        report.reuse_ratio() * 100.0,
        report.wall.as_secs_f64() * 1e3
    );
    rows.push(vec![
        "delta".to_string(),
        "1".to_string(),
        "delta_apply".to_string(),
        report.affected.len().to_string(),
        f3(report.wall.as_secs_f64() * 1e3),
    ]);
    rows
}

/// One long model-based run under `gred_testkit`; on failure, prints the
/// violations, the one-line repro command, and a drop-one-minimal
/// schedule, then exits 1.
fn run_soak(seed: u64, ops: usize, switches: usize) {
    use gred_testkit::{generate, Harness, HarnessConfig};

    let harness = Harness::new(HarnessConfig {
        switches,
        max_switches: switches + 6,
        ..HarnessConfig::default()
    });
    println!("soak: seed {seed}, {ops} ops, {switches} initial switches");
    let outcome = harness.run_seeded(seed, ops, None);
    let s = outcome.stats;
    println!(
        "placed {} retrieved {} extended {} retracted {} joined {} left {} crashed {} skipped {}",
        s.placed, s.retrieved, s.extended, s.retracted, s.joined, s.left, s.crashed, s.skipped
    );
    match outcome.failure {
        None => println!("soak passed: all invariants held after every op"),
        Some(ref failure) => {
            println!("soak FAILED at step {} ({:?}):", failure.step, failure.op);
            for violation in &failure.violations {
                println!("  - {violation}");
            }
            println!("reproduce with: {}", outcome.repro_line());
            let schedule = generate(seed, ops);
            let shrunk = harness.shrink(seed, &schedule[..=failure.step], None);
            println!("minimal failing schedule ({} ops):", shrunk.len());
            for op in &shrunk {
                println!("  {op:?}");
            }
            std::process::exit(1);
        }
    }
}

/// Boots a loopback TCP cluster (one node per switch) and drives a
/// place/retrieve workload through it, cross-checking every reply
/// against the in-process model. Exits 1 on any lost or wrong reply.
fn run_cluster(seed: u64, ops: usize, switches: usize) {
    use gred::{GredConfig, GredNetwork};
    use gred_cluster::{Client, Cluster, ClusterConfig};
    use gred_hash::DataId;
    use gred_net::{waxman_topology, ServerPool, WaxmanConfig};
    use std::collections::HashMap;
    use std::time::Instant;

    let (topo, _) = waxman_topology(&WaxmanConfig::with_switches(switches, seed));
    let pool = ServerPool::uniform(switches, 2, u64::MAX);
    let config = GredConfig {
        auto_extend: false,
        ..GredConfig::with_iterations(8).seeded(seed)
    };
    let net = GredNetwork::build(topo, pool, config).expect("seeded network builds");
    let cluster = Cluster::boot(&net, ClusterConfig::default()).expect("cluster boots");
    println!(
        "cluster: {} switches as loopback TCP nodes, seed {seed}, {ops} ids",
        cluster.len()
    );

    let members = net.members().to_vec();
    let mut clients: HashMap<usize, Client> = HashMap::new();
    let mut rotor = seed;
    let mut next = |n: usize| {
        rotor = rotor
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (rotor >> 33) as usize % n
    };
    let mut lost = 0usize;
    let started = Instant::now();

    for i in 0..ops {
        let id = DataId::new(format!("cluster/{seed}/{i}"));
        let access = members[next(members.len())];
        let client = clients
            .entry(access)
            .or_insert_with(|| cluster.client(access).expect("client connects"));
        match client.place(&id, format!("payload/{i}").into_bytes()) {
            Ok(reply) if reply.ack_server() == Some(net.responsible_server(&id)) => {}
            Ok(reply) => {
                println!(
                    "place {i}: acked by {:?}, expected {}",
                    reply.ack_server(),
                    net.responsible_server(&id)
                );
                lost += 1;
            }
            Err(e) => {
                println!("place {i} via node {access} failed: {e}");
                lost += 1;
            }
        }
    }
    for i in 0..ops {
        let id = DataId::new(format!("cluster/{seed}/{i}"));
        let access = members[next(members.len())];
        let client = clients
            .entry(access)
            .or_insert_with(|| cluster.client(access).expect("client connects"));
        match client.retrieve(&id) {
            Ok(reply)
                if reply.is_hit()
                    && reply.payload.as_ref() == format!("payload/{i}").as_bytes() => {}
            Ok(_) => {
                println!("retrieve {i}: wrong or missing payload");
                lost += 1;
            }
            Err(e) => {
                println!("retrieve {i} via node {access} failed: {e}");
                lost += 1;
            }
        }
    }

    let elapsed = started.elapsed();
    drop(clients);
    let report = cluster.shutdown();
    let total = 2 * ops;
    println!("{report}");
    let hot = report.hot_stats();
    println!("hot path: {hot}");
    if hot.oneshot_fallbacks > 0 || hot.link_reconnects > 0 {
        println!(
            "warning: peer contention spilled past the multiplexed links \
             ({} one-shot fallbacks, {} reconnects)",
            hot.oneshot_fallbacks, hot.link_reconnects
        );
    }
    println!(
        "workload: {total} requests in {:.3}s ({:.0} req/s), {lost} lost",
        elapsed.as_secs_f64(),
        total as f64 / elapsed.as_secs_f64().max(1e-9),
    );
    if lost > 0 || report.total_errors() > 0 {
        println!(
            "cluster FAILED: {lost} lost, {} node errors",
            report.total_errors()
        );
        std::process::exit(1);
    }
    println!("cluster passed: zero lost requests, graceful shutdown");
}

/// The observability acceptance run: boot a loopback cluster, run a
/// small seeded workload, then scrape every node purely over the wire
/// and print per-node, per-link, and cluster-health snapshots. With
/// `--json PATH` the scraped snapshot bundle is also written as JSON
/// (the artifact the `stats-smoke` CI job uploads).
fn run_stats(seed: u64, ops: usize, switches: usize, json: Option<PathBuf>) {
    use gred::{GredConfig, GredNetwork};
    use gred_cluster::{Cluster, ClusterConfig, ClusterHealth};
    use gred_hash::DataId;
    use gred_net::{waxman_topology, ServerPool, WaxmanConfig};

    let (topo, _) = waxman_topology(&WaxmanConfig::with_switches(switches, seed));
    let pool = ServerPool::uniform(switches, 2, u64::MAX);
    let config = GredConfig {
        auto_extend: false,
        ..GredConfig::with_iterations(8).seeded(seed)
    };
    let net = GredNetwork::build(topo, pool, config).expect("seeded network builds");
    let cluster = Cluster::boot(&net, ClusterConfig::default()).expect("cluster boots");
    println!(
        "stats: {} switches as loopback TCP nodes, seed {seed}, {ops} ops",
        cluster.len()
    );

    let members = net.members().to_vec();
    let mut client = cluster
        .client_multi(&members)
        .expect("workload client connects");
    for i in 0..ops {
        let id = DataId::new(format!("stats/{seed}/{i}"));
        client
            .place(&id, format!("payload/{i}").into_bytes())
            .expect("seeded placement succeeds");
        client.retrieve(&id).expect("seeded retrieval succeeds");
    }

    let snapshots = cluster.scrape().expect("every node answers the scrape");
    for snap in &snapshots {
        println!(
            "node {}: up {}ms | {} requests ({} delivered, {} errors) | {} stored | \
             {} detours | cache {}h/{}m | {} conns, {} queued bytes, {} workers | {} table rows",
            snap.switch,
            snap.uptime_ms,
            snap.requests,
            snap.delivered,
            snap.errors,
            snap.stored_items,
            snap.hot.detour_forwards,
            snap.hot.cache_hits,
            snap.hot.cache_misses,
            snap.open_connections,
            snap.queued_bytes,
            snap.dispatch_workers,
            snap.table_rows,
        );
        for link in &snap.links {
            println!(
                "  link -> {}: {}, {} reconnects, suspect {}ms",
                link.peer,
                if link.connected { "connected" } else { "down" },
                link.reconnects,
                link.suspect_ms_left,
            );
        }
    }
    let health = ClusterHealth::aggregate(&snapshots);
    println!("health: {health}");
    if let Some(path) = json {
        std::fs::write(&path, health.to_json(&snapshots)).expect("snapshot JSON writes");
        println!("wrote {}", path.display());
    }
    let report = cluster.shutdown();
    if report.total_errors() > 0 {
        println!("stats FAILED: {} node errors", report.total_errors());
        std::process::exit(1);
    }
    println!("stats passed: all nodes scraped over the wire");
}

/// The chaos acceptance run: crash-tolerant serving under seeded node
/// kills and link faults. Exits 1 when an acknowledged write is lost.
fn run_chaos_cmd(seed: u64, ops: usize, switches: usize, kills: usize) {
    use gred_cluster::{run_chaos, ChaosConfig};
    use gred_testkit::ChaosPlan;

    let cfg = ChaosConfig {
        seed,
        ops,
        switches,
        kills,
        ..ChaosConfig::default()
    };
    println!(
        "chaos: seed {seed}, {ops} ops, {switches} switches, {kills} kills, \
         k={} quorum={}",
        cfg.copies, cfg.quorum
    );
    if let Some(dir) = std::env::var_os("GRED_CHAOS_DIR") {
        let dir = PathBuf::from(dir);
        let _ = std::fs::create_dir_all(&dir);
        let plan = ChaosPlan::generate(cfg.seed, cfg.ops, cfg.kills, cfg.link_faults);
        let path = dir.join(format!("chaos-plan-{seed}.txt"));
        let body = plan
            .events
            .iter()
            .map(|e| format!("op {:>4}: {:?}\n", e.at_op, e.action))
            .collect::<String>();
        if std::fs::write(&path, body).is_ok() {
            eprintln!("wrote {}", path.display());
        }
    }
    let started = std::time::Instant::now();
    let outcome = run_chaos(&cfg).expect("chaos infrastructure boots");
    println!("{outcome}");
    println!("cluster: {}", outcome.report);
    println!("hot path: {}", outcome.report.hot_stats());
    match &outcome.probe {
        Some(probe) => println!(
            "post-heal probe: detours {} -> {}, {} suspect links, \
             {} clean writes ({} degraded), Δinvalidations {} across {} nodes",
            probe.detours_before,
            probe.detours_after,
            probe.suspect_links,
            probe.clean_writes,
            probe.degraded_writes,
            probe.invalidations_delta,
            probe.nodes,
        ),
        None => println!("post-heal probe: scrape unavailable"),
    }
    println!(
        "elapsed {:.3}s; reproduce with: {}",
        started.elapsed().as_secs_f64(),
        outcome.repro_line()
    );
    if !outcome.passed() {
        println!(
            "chaos FAILED: {} acknowledged writes lost",
            outcome.lost_acked
        );
        std::process::exit(1);
    }
    println!("chaos passed: zero acknowledged writes lost");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paper = args.iter().any(|a| a == "--paper");
    let csv_dir = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or_else(gred_runtime::default_threads)
        .max(1);
    let scale = if paper {
        Scale::paper()
    } else {
        Scale::quick()
    };
    let out = Output { csv_dir };
    let experiment = args
        .iter()
        .enumerate()
        .filter(|&(i, a)| {
            let is_flag = a.starts_with("--");
            let is_flag_value = i > 0
                && (args[i - 1] == "--csv"
                    || args[i - 1] == "--threads"
                    || args[i - 1] == "--seed"
                    || args[i - 1] == "--ops"
                    || args[i - 1] == "--switches"
                    || args[i - 1] == "--kills"
                    || args[i - 1] == "--json");
            !is_flag && !is_flag_value
        })
        .map(|(_, a)| a.as_str())
        .next()
        .unwrap_or("all");

    if matches!(experiment, "soak" | "cluster" | "chaos" | "stats") {
        let flag = |name: &str| {
            args.iter()
                .position(|a| a == name)
                .and_then(|i| args.get(i + 1))
                .and_then(|v| v.parse::<u64>().ok())
        };
        let seed = flag("--seed").unwrap_or(SEED);
        match experiment {
            "cluster" => {
                let switches = (flag("--switches").unwrap_or(12) as usize).max(4);
                let ops = flag("--ops").unwrap_or(500) as usize;
                run_cluster(seed, ops, switches);
            }
            "chaos" => {
                let switches = (flag("--switches").unwrap_or(16) as usize).max(5);
                let ops = flag("--ops").unwrap_or(500) as usize;
                let kills = flag("--kills").unwrap_or(2) as usize;
                run_chaos_cmd(seed, ops, switches, kills);
            }
            "stats" => {
                let switches = (flag("--switches").unwrap_or(8) as usize).max(4);
                let ops = flag("--ops").unwrap_or(100) as usize;
                let json = args
                    .iter()
                    .position(|a| a == "--json")
                    .and_then(|i| args.get(i + 1))
                    .map(PathBuf::from);
                run_stats(seed, ops, switches, json);
            }
            _ => {
                let switches = (flag("--switches").unwrap_or(12) as usize).max(4);
                let ops = flag("--ops").unwrap_or(2000) as usize;
                run_soak(seed, ops, switches);
            }
        }
        return;
    }

    let all = [
        "fig7a",
        "fig8",
        "fig9a",
        "fig9b",
        "fig9c",
        "fig9d",
        "fig11a",
        "fig11b",
        "fig11c",
        "tables",
        "churn",
        "churn-owners",
        "embedding",
        "qdelay",
        "availability",
        "hotspot",
        "contention",
        "fload",
        "cdf",
        "overhead",
        "hetero",
        "build-report",
    ];
    if experiment == "all" {
        for e in all {
            run(e, &scale, &out, threads);
        }
    } else {
        run(experiment, &scale, &out, threads);
    }
}
