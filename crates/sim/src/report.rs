//! Plain-text table rendering for the `repro` binary.

/// Renders a fixed-width table: headers, a separator, then rows.
///
/// ```
/// let t = gred_sim::report::render_table(
///     &["system", "stretch"],
///     &[vec!["GRED".into(), "1.12".into()]],
/// );
/// assert!(t.contains("GRED"));
/// assert!(t.lines().count() == 3);
/// ```
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, &w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
            .trim_end()
            .to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(
        &widths
            .iter()
            .map(|&w| "-".repeat(w))
            .collect::<Vec<_>>()
            .join("  "),
    );
    for row in rows {
        out.push('\n');
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Formats a float with 3 decimals (the precision the tables use).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Renders rows as CSV (RFC-4180-style quoting for cells containing
/// commas, quotes, or newlines).
///
/// ```
/// let csv = gred_sim::report::render_csv(
///     &["system", "note"],
///     &[vec!["GRED".into(), "hello, world".into()]],
/// );
/// assert_eq!(csv, "system,note\nGRED,\"hello, world\"\n");
/// ```
pub fn render_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    fn quote(cell: &str) -> String {
        if cell.contains([',', '"', '\n']) {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_string()
        }
    }
    let mut out = String::new();
    out.push_str(
        &headers
            .iter()
            .map(|h| quote(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer-name".into(), "2.5".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("----"));
        // The value column starts at the same offset in every row.
        let col = lines[3].find("2.5").unwrap();
        assert_eq!(lines[2].chars().nth(col), Some('1'));
    }

    #[test]
    fn empty_rows_table() {
        let t = render_table(&["a"], &[]);
        assert_eq!(t.lines().count(), 2);
    }

    #[test]
    fn f3_precision() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f3(2.0), "2.000");
    }
}

#[cfg(test)]
mod csv_tests {
    use super::*;

    #[test]
    fn plain_cells_unquoted() {
        let csv = render_csv(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(csv, "a,b\n1,2\n");
    }

    #[test]
    fn quotes_are_doubled() {
        let csv = render_csv(&["x"], &[vec!["he said \"hi\"".into()]]);
        assert_eq!(csv, "x\n\"he said \"\"hi\"\"\"\n");
    }

    #[test]
    fn empty_table() {
        assert_eq!(render_csv(&["only"], &[]), "only\n");
    }
}
