//! Uniform drivers for the compared systems.
//!
//! Every experiment compares some subset of GRED, GRED-NoCVT, and Chord
//! over the *same* topology and server pool. [`SystemUnderTest`] gives the
//! experiments one interface for the two operations every figure needs:
//! "which server owns this id" (load experiments) and "how many hops does
//! a request take vs the shortest path" (stretch experiments).

use gred::{GredConfig, GredNetwork};
use gred_chord::{overlay_path_physical_hops, ChordConfig, ChordNetwork};
use gred_hash::DataId;
use gred_net::{ServerId, ServerPool, Topology};

/// Which system an experiment instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComparedSystem {
    /// GRED with `iterations` C-regulation iterations. `iterations = 0`
    /// is the paper's GRED-NoCVT variant.
    Gred {
        /// The `T` knob of Fig. 11(c).
        iterations: usize,
    },
    /// Chord with `virtual_nodes` virtual nodes per server (1 = plain).
    Chord {
        /// Virtual nodes per server.
        virtual_nodes: usize,
    },
}

impl ComparedSystem {
    /// The display name used in tables ("GRED", "GRED-NoCVT", "Chord").
    pub fn name(&self) -> String {
        match self {
            ComparedSystem::Gred { iterations: 0 } => "GRED-NoCVT".to_string(),
            ComparedSystem::Gred { iterations } => format!("GRED(T={iterations})"),
            ComparedSystem::Chord { virtual_nodes: 1 } => "Chord".to_string(),
            ComparedSystem::Chord { virtual_nodes } => format!("Chord(v={virtual_nodes})"),
        }
    }
}

/// One instantiated system over a topology + pool.
#[derive(Debug)]
pub struct SystemUnderTest {
    topology: Topology,
    inner: Inner,
}

#[derive(Debug)]
enum Inner {
    Gred(Box<GredNetwork>),
    Chord(ChordNetwork),
}

impl SystemUnderTest {
    /// Builds `system` over the given substrate.
    ///
    /// # Panics
    ///
    /// Panics when the underlying build fails (the experiment substrates
    /// are always valid: connected topologies, every switch with servers).
    pub fn build(topology: Topology, pool: ServerPool, system: ComparedSystem, seed: u64) -> Self {
        let inner = match system {
            ComparedSystem::Gred { iterations } => {
                let config = GredConfig::with_iterations(iterations).seeded(seed);
                let net = GredNetwork::build(topology.clone(), pool, config)
                    .expect("experiment substrate builds");
                Inner::Gred(Box::new(net))
            }
            ComparedSystem::Chord { virtual_nodes } => {
                let chord = ChordNetwork::build(&pool, ChordConfig { virtual_nodes });
                Inner::Chord(chord)
            }
        };
        SystemUnderTest { topology, inner }
    }

    /// The physical topology the system runs over.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The server that owns `id` (no data is stored; used for load
    /// accounting at scale).
    pub fn owner_server(&self, id: &DataId) -> ServerId {
        match &self.inner {
            Inner::Gred(net) => {
                // Greedy from a fixed member — O(√n) and provably the
                // nearest switch, much faster than a brute-force scan for
                // the paper's million-item load sweeps.
                let start = net.members()[0];
                let pos = net.position_of_id(id);
                let owner = *net
                    .dt()
                    .greedy_route(start, pos)
                    .last()
                    .expect("route is nonempty");
                let index = gred_hash::select_server(id, net.pool().servers_at(owner));
                ServerId {
                    switch: owner,
                    index,
                }
            }
            Inner::Chord(chord) => chord.owner(id),
        }
    }

    /// Request hop counts for retrieving `id` from `access_switch`:
    /// `(actual_hops, shortest_hops)` where `shortest` is the direct
    /// shortest path from the access switch to the owner switch.
    pub fn request_hops(&self, id: &DataId, access_switch: usize) -> (u32, u32) {
        match &self.inner {
            Inner::Gred(net) => {
                let pos = net.position_of_id(id);
                let route =
                    gred::plane::forwarding::route(net.dataplanes(), access_switch, pos, id)
                        .expect("routing over installed state succeeds");
                let shortest = self
                    .topology
                    .shortest_path(access_switch, route.dest)
                    .expect("connected topology")
                    .len() as u32
                    - 1;
                (route.physical_hops(), shortest)
            }
            Inner::Chord(chord) => {
                let path = chord.lookup_path(access_switch, id);
                let actual =
                    overlay_path_physical_hops(&self.topology, &path).expect("connected topology");
                let owner = path.last().expect("path is nonempty");
                let shortest = self
                    .topology
                    .shortest_path(access_switch, owner.switch)
                    .expect("connected topology")
                    .len() as u32
                    - 1;
                (actual, shortest)
            }
        }
    }

    /// Routing stretch for one request (1.0 when the owner is the access
    /// switch itself).
    pub fn request_stretch(&self, id: &DataId, access_switch: usize) -> f64 {
        let (actual, shortest) = self.request_hops(id, access_switch);
        crate::metrics::stretch(actual, shortest)
    }

    /// Access to the GRED network when the system is a GRED variant.
    pub fn as_gred(&self) -> Option<&GredNetwork> {
        match &self.inner {
            Inner::Gred(net) => Some(net),
            Inner::Chord(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gred_net::{waxman_topology, WaxmanConfig};

    fn substrate(n: usize, seed: u64) -> (Topology, ServerPool) {
        let (topo, _) = waxman_topology(&WaxmanConfig::with_switches(n, seed));
        (topo, ServerPool::uniform(n, 10, u64::MAX))
    }

    #[test]
    fn names() {
        assert_eq!(ComparedSystem::Gred { iterations: 0 }.name(), "GRED-NoCVT");
        assert_eq!(ComparedSystem::Gred { iterations: 50 }.name(), "GRED(T=50)");
        assert_eq!(ComparedSystem::Chord { virtual_nodes: 1 }.name(), "Chord");
        assert_eq!(
            ComparedSystem::Chord { virtual_nodes: 4 }.name(),
            "Chord(v=4)"
        );
    }

    #[test]
    fn owner_is_deterministic_and_matches_routing() {
        let (topo, pool) = substrate(20, 1);
        let sut = SystemUnderTest::build(topo, pool, ComparedSystem::Gred { iterations: 10 }, 1);
        let net = sut.as_gred().unwrap();
        for i in 0..40 {
            let id = DataId::new(format!("own{i}"));
            assert_eq!(sut.owner_server(&id), net.responsible_server(&id));
        }
    }

    #[test]
    fn gred_stretch_is_low_chord_higher() {
        let (topo, pool) = substrate(40, 2);
        let gred = SystemUnderTest::build(
            topo.clone(),
            pool.clone(),
            ComparedSystem::Gred { iterations: 10 },
            2,
        );
        let chord =
            SystemUnderTest::build(topo, pool, ComparedSystem::Chord { virtual_nodes: 1 }, 2);
        let mut g_total = 0.0;
        let mut c_total = 0.0;
        let n = 50;
        for i in 0..n {
            let id = DataId::new(format!("st{i}"));
            let access = (i * 3) % 40;
            g_total += gred.request_stretch(&id, access);
            c_total += chord.request_stretch(&id, access);
        }
        let (g, c) = (g_total / n as f64, c_total / n as f64);
        assert!(g < c, "GRED stretch {g:.2} must beat Chord {c:.2}");
        assert!(g < 2.0, "GRED stretch should be small, got {g:.2}");
    }

    #[test]
    fn chord_owner_ignores_access_point() {
        let (topo, pool) = substrate(15, 3);
        let sut = SystemUnderTest::build(topo, pool, ComparedSystem::Chord { virtual_nodes: 1 }, 3);
        let id = DataId::new("fixed");
        let owner = sut.owner_server(&id);
        for access in 0..15 {
            let path_owner = sut.request_hops(&id, access);
            // The stretch call must not panic and the owner stays fixed.
            let _ = path_owner;
            assert_eq!(sut.owner_server(&id), owner);
        }
    }
}
