//! Per-server FIFO queueing for response-delay experiments.
//!
//! The paper's Fig. 8 delay is flat because its testbed servers are far
//! from saturation. To probe the regime where request volume *does*
//! matter, this module runs a small discrete-event simulation: requests
//! arrive at given times, each is serviced FIFO by its target server for
//! a fixed service time, and the response delay adds any queueing wait.

use std::collections::HashMap;

/// One retrieval request to simulate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueuedRequest<K> {
    /// Arrival time at the server, in microseconds.
    pub arrival_us: f64,
    /// The server the request is delivered to.
    pub server: K,
    /// Network time already spent (request + response propagation).
    pub network_us: f64,
}

/// Simulates FIFO service at every server and returns each request's
/// total response delay (network + waiting + service), in input order.
///
/// # Panics
///
/// Panics if `service_us` is negative or any arrival time is not finite.
pub fn fifo_delays<K: std::hash::Hash + Eq + Copy>(
    requests: &[QueuedRequest<K>],
    service_us: f64,
) -> Vec<f64> {
    assert!(service_us >= 0.0, "service time must be non-negative");
    // Sort by arrival to process in time order, remembering input slots.
    let mut order: Vec<usize> = (0..requests.len()).collect();
    order.sort_by(|&a, &b| {
        requests[a]
            .arrival_us
            .partial_cmp(&requests[b].arrival_us)
            .expect("arrival times are finite")
    });

    let mut server_free_at: HashMap<K, f64> = HashMap::new();
    let mut delays = vec![0.0; requests.len()];
    for idx in order {
        let r = &requests[idx];
        assert!(r.arrival_us.is_finite(), "arrival time must be finite");
        let free = server_free_at.entry(r.server).or_insert(0.0);
        let start = r.arrival_us.max(*free);
        let finish = start + service_us;
        *free = finish;
        delays[idx] = r.network_us + (finish - r.arrival_us);
    }
    delays
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(arrival: f64, server: u32) -> QueuedRequest<u32> {
        QueuedRequest {
            arrival_us: arrival,
            server,
            network_us: 100.0,
        }
    }

    #[test]
    fn idle_server_has_no_wait() {
        let delays = fifo_delays(&[req(0.0, 1)], 50.0);
        assert_eq!(delays, vec![150.0]); // 100 network + 50 service
    }

    #[test]
    fn back_to_back_requests_queue() {
        // Two requests hit the same server at t=0; the second waits.
        let delays = fifo_delays(&[req(0.0, 1), req(0.0, 1)], 50.0);
        assert_eq!(delays[0], 150.0);
        assert_eq!(delays[1], 200.0);
    }

    #[test]
    fn different_servers_do_not_interfere() {
        let delays = fifo_delays(&[req(0.0, 1), req(0.0, 2)], 50.0);
        assert_eq!(delays, vec![150.0, 150.0]);
    }

    #[test]
    fn spaced_arrivals_never_wait() {
        let delays = fifo_delays(&[req(0.0, 1), req(100.0, 1), req(200.0, 1)], 50.0);
        assert!(delays.iter().all(|&d| (d - 150.0).abs() < 1e-9));
    }

    #[test]
    fn out_of_order_input_is_handled() {
        // Input order differs from arrival order; delays map back to the
        // input slots.
        let delays = fifo_delays(&[req(10.0, 1), req(0.0, 1)], 50.0);
        // The t=0 request is served first (delay 150); the t=10 one waits
        // until t=50 then finishes at 100 => delay 100-10+100 = 190.
        assert_eq!(delays[1], 150.0);
        assert_eq!(delays[0], 190.0);
    }

    #[test]
    fn empty_input() {
        assert!(fifo_delays::<u32>(&[], 10.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_service_panics() {
        let _ = fifo_delays(&[req(0.0, 1)], -1.0);
    }

    #[test]
    fn saturation_grows_delay_linearly() {
        // 100 simultaneous requests at one server: the last waits 99
        // service times.
        let reqs: Vec<_> = (0..100).map(|_| req(0.0, 7)).collect();
        let delays = fifo_delays(&reqs, 10.0);
        let max = delays.iter().cloned().fold(0.0, f64::max);
        assert_eq!(max, 100.0 + 100.0 * 10.0);
    }
}
