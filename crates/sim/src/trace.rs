//! Per-request trace records.
//!
//! Experiments report aggregates; traces keep the raw per-request rows
//! (key, access switch, owner, hops, stretch) for offline analysis. The
//! collector aggregates on the fly and exports CSV via
//! [`crate::report::render_csv`].

use gred::GredNetwork;
use gred_hash::DataId;
use serde::Serialize;

/// One traced request.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RequestTrace {
    /// The data identifier, rendered.
    pub key: String,
    /// Access switch.
    pub access: usize,
    /// Owner (destination) switch.
    pub owner: usize,
    /// Physical hops of the request path.
    pub hops: u32,
    /// Greedy (overlay) hops.
    pub overlay_hops: u32,
    /// Shortest-path hops access → owner.
    pub shortest: u32,
    /// Routing stretch.
    pub stretch: f64,
}

/// Collects traces and running aggregates.
#[derive(Debug, Clone, Default)]
pub struct TraceCollector {
    traces: Vec<RequestTrace>,
}

impl TraceCollector {
    /// An empty collector.
    pub fn new() -> Self {
        TraceCollector::default()
    }

    /// Routes `id` from `access` on `net` and records the trace.
    ///
    /// # Panics
    ///
    /// Panics if routing fails (experiments only trace valid access
    /// switches on connected networks).
    pub fn trace_request(&mut self, net: &GredNetwork, id: &DataId, access: usize) {
        let pos = net.position_of_id(id);
        let route = gred::plane::forwarding::route(net.dataplanes(), access, pos, id)
            .expect("trace requests route");
        let shortest = net
            .topology()
            .shortest_path(access, route.dest)
            .expect("connected")
            .len() as u32
            - 1;
        self.traces.push(RequestTrace {
            key: id.to_string(),
            access,
            owner: route.dest,
            hops: route.physical_hops(),
            overlay_hops: route.overlay_hops(),
            shortest,
            stretch: crate::metrics::stretch(route.physical_hops(), shortest),
        });
    }

    /// The recorded traces, in request order.
    pub fn traces(&self) -> &[RequestTrace] {
        &self.traces
    }

    /// Number of traced requests.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Whether nothing has been traced.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Mean stretch over the traced requests (0 when empty).
    pub fn mean_stretch(&self) -> f64 {
        if self.traces.is_empty() {
            return 0.0;
        }
        self.traces.iter().map(|t| t.stretch).sum::<f64>() / self.traces.len() as f64
    }

    /// The `q`-quantile (0–1) of per-request stretch, by nearest rank.
    ///
    /// # Panics
    ///
    /// Panics when `q` is outside `[0, 1]` or the collector is empty.
    pub fn stretch_quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        assert!(!self.traces.is_empty(), "no traces recorded");
        let mut xs: Vec<f64> = self.traces.iter().map(|t| t.stretch).collect();
        xs.sort_by(f64::total_cmp);
        let rank = ((xs.len() as f64 - 1.0) * q).round() as usize;
        xs[rank]
    }

    /// Renders the traces as CSV.
    pub fn to_csv(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .traces
            .iter()
            .map(|t| {
                vec![
                    t.key.clone(),
                    t.access.to_string(),
                    t.owner.to_string(),
                    t.hops.to_string(),
                    t.overlay_hops.to_string(),
                    t.shortest.to_string(),
                    format!("{:.4}", t.stretch),
                ]
            })
            .collect();
        crate::report::render_csv(
            &[
                "key",
                "access",
                "owner",
                "hops",
                "overlay_hops",
                "shortest",
                "stretch",
            ],
            &rows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gred::GredConfig;
    use gred_net::{waxman_topology, ServerPool, WaxmanConfig};

    fn net() -> GredNetwork {
        let (topo, _) = waxman_topology(&WaxmanConfig::with_switches(15, 4));
        let pool = ServerPool::uniform(15, 2, u64::MAX);
        GredNetwork::build(topo, pool, GredConfig::with_iterations(10)).unwrap()
    }

    #[test]
    fn traces_accumulate_and_aggregate() {
        let net = net();
        let mut c = TraceCollector::new();
        assert!(c.is_empty());
        for i in 0..40 {
            c.trace_request(&net, &DataId::new(format!("t/{i}")), i % 15);
        }
        assert_eq!(c.len(), 40);
        assert!(c.mean_stretch() >= 1.0);
        assert!(c.stretch_quantile(1.0) >= c.stretch_quantile(0.5));
        assert!(c.stretch_quantile(0.0) >= 1.0);
    }

    #[test]
    fn traces_are_internally_consistent() {
        let net = net();
        let mut c = TraceCollector::new();
        c.trace_request(&net, &DataId::new("x"), 3);
        let t = &c.traces()[0];
        assert_eq!(t.access, 3);
        assert!(t.hops >= t.shortest);
        assert!(t.overlay_hops <= t.hops);
        assert_eq!(t.stretch, crate::metrics::stretch(t.hops, t.shortest));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let net = net();
        let mut c = TraceCollector::new();
        c.trace_request(&net, &DataId::new("csv-key"), 0);
        let csv = c.to_csv();
        assert!(csv.starts_with("key,access,owner"));
        assert!(csv.contains("csv-key"));
        assert_eq!(csv.lines().count(), 2);
    }

    #[test]
    #[should_panic(expected = "no traces")]
    fn quantile_of_empty_panics() {
        TraceCollector::new().stretch_quantile(0.5);
    }
}
