//! The reference oracle: a deliberately simple model of where GRED must
//! keep every datum.
//!
//! The oracle never routes. It keeps the member set, each member's snapped
//! virtual position and server count, the active extensions, and one
//! `(payload, location)` record per stored id. The owner of an id is found
//! by brute force — quantize all positions onto the production code's
//! 2⁻³⁰ lattice and scan for the exactly-nearest member — so agreement
//! with the real network is a theorem check, not a float coincidence.
//!
//! One asymmetry of the real system is mirrored faithfully: a *crash*
//! drains the victim's data before the controller validates the removal,
//! so a crash that fails connectivity checks loses data while membership
//! stays intact ([`Oracle::crash_drain`] without [`Oracle::leave`]).

use bytes::Bytes;
use gred_geometry::Point2;
use gred_hash::DataId;
use gred_net::ServerId;
use std::collections::{BTreeMap, BTreeSet};

/// Same lattice resolution as `gred_geometry::delaunay`.
const QUANT_SCALE: f64 = (1u64 << 30) as f64;

/// Cap on remembered deletions; oldest (smallest) ids are forgotten first.
const MAX_TOMBSTONES: usize = 64;

fn quantize(p: Point2) -> (i64, i64) {
    (
        (p.x * QUANT_SCALE).round() as i64,
        (p.y * QUANT_SCALE).round() as i64,
    )
}

fn idist2(a: (i64, i64), b: (i64, i64)) -> i128 {
    let dx = (a.0 - b.0) as i128;
    let dy = (a.1 - b.1) as i128;
    dx * dx + dy * dy
}

/// A member switch as the oracle sees it.
#[derive(Debug, Clone, PartialEq)]
pub struct Member {
    /// Lattice-snapped virtual position.
    pub position: Point2,
    /// Number of edge servers behind the switch.
    pub servers: usize,
}

/// One stored datum.
#[derive(Debug, Clone, PartialEq)]
pub struct Item {
    /// The payload the network must return.
    pub payload: Bytes,
    /// The server the network must be storing it on.
    pub loc: ServerId,
}

/// In-memory reference model of a GRED deployment.
#[derive(Debug, Clone, Default)]
pub struct Oracle {
    members: BTreeMap<usize, Member>,
    items: BTreeMap<DataId, Item>,
    extensions: BTreeMap<ServerId, ServerId>,
    tombstones: BTreeSet<DataId>,
    /// The may-serve set of the read caches: payloads some node's cache
    /// is allowed to answer with right now. Maintained by the same
    /// discipline the real nodes follow — fill on a clean read
    /// ([`Oracle::cache_fill`]), drop on every write ([`Oracle::place`]
    /// invalidates before it records the new payload), flush on every
    /// topology change (crash, leave, join) — so a cached read can
    /// never resurrect a crash-tombstoned or superseded value.
    cached: BTreeMap<DataId, Bytes>,
}

impl Oracle {
    /// Builds an oracle mirroring `net`'s current membership, positions,
    /// and extensions. The store mirror starts empty — initialize before
    /// placing data.
    pub fn from_network(net: &gred::GredNetwork) -> Oracle {
        let mut members = BTreeMap::new();
        for &m in net.members() {
            members.insert(
                m,
                Member {
                    position: net.position_of_switch(m).expect("member has a position"),
                    servers: net.pool().servers_at(m),
                },
            );
        }
        Oracle {
            members,
            items: BTreeMap::new(),
            extensions: net.active_extensions().into_iter().collect(),
            tombstones: BTreeSet::new(),
            cached: BTreeMap::new(),
        }
    }

    /// Member switch ids, ascending.
    pub fn member_ids(&self) -> Vec<usize> {
        self.members.keys().copied().collect()
    }

    /// The member record for `switch`.
    pub fn member(&self, switch: usize) -> Option<&Member> {
        self.members.get(&switch)
    }

    /// Active extensions as sorted `(original, takeover)` pairs.
    pub fn extensions(&self) -> Vec<(ServerId, ServerId)> {
        self.extensions.iter().map(|(&o, &t)| (o, t)).collect()
    }

    /// The takeover extending `original`, if any.
    pub fn extension_of(&self, original: ServerId) -> Option<ServerId> {
        self.extensions.get(&original).copied()
    }

    /// Stored items in id order.
    pub fn items(&self) -> impl Iterator<Item = (&DataId, &Item)> {
        self.items.iter()
    }

    /// Number of stored items.
    pub fn item_count(&self) -> usize {
        self.items.len()
    }

    /// Remembered deletions (data lost to crashes) in id order.
    pub fn tombstones(&self) -> impl Iterator<Item = &DataId> {
        self.tombstones.iter()
    }

    /// The server `H(d) mod s` names on the member switch exactly nearest
    /// `H(d)` — brute force, same lattice and tie-break as the production
    /// triangulation (`nearest` scans in member index order, which is
    /// ascending switch id, breaking distance ties by lexicographically
    /// smaller quantized position).
    ///
    /// # Panics
    ///
    /// Panics when the oracle has no members.
    pub fn owner(&self, id: &DataId) -> ServerId {
        let (x, y) = gred_hash::virtual_position(id);
        let target = quantize(Point2::new(x, y));
        let mut best: Option<(usize, (i64, i64), i128)> = None;
        for (&m, member) in &self.members {
            let q = quantize(member.position);
            let d = idist2(q, target);
            let better = match best {
                None => true,
                Some((_, bq, bd)) => d < bd || (d == bd && q < bq),
            };
            if better {
                best = Some((m, q, d));
            }
        }
        let (switch, _, _) = best.expect("oracle has at least one member");
        let servers = self.members[&switch].servers;
        ServerId {
            switch,
            index: gred_hash::select_server(id, servers),
        }
    }

    /// Where a placement of `id` must land right now: the owner, or its
    /// takeover while the owner's range is extended.
    pub fn placement_target(&self, id: &DataId) -> ServerId {
        let owner = self.owner(id);
        self.extension_of(owner).unwrap_or(owner)
    }

    /// Mirrors a successful placement. The write-through invalidation
    /// happens here too: the cached copy is dropped *with* the write,
    /// never surviving it, exactly as the owner broadcasts
    /// `Invalidate` before acking.
    pub fn place(&mut self, id: DataId, payload: impl Into<Bytes>) {
        let loc = self.placement_target(&id);
        self.tombstones.remove(&id);
        self.cached.remove(&id);
        self.items.insert(
            id,
            Item {
                payload: payload.into(),
                loc,
            },
        );
    }

    /// Mirrors a successful range extension.
    pub fn extend(&mut self, original: ServerId, takeover: ServerId) {
        let prev = self.extensions.insert(original, takeover);
        debug_assert!(prev.is_none(), "extend over an active extension");
    }

    /// Mirrors a successful retraction: items the takeover held on the
    /// original's behalf come home.
    pub fn retract(&mut self, original: ServerId) {
        let Some(takeover) = self.extensions.remove(&original) else {
            return;
        };
        let homecoming: Vec<DataId> = self
            .items
            .iter()
            .filter(|(id, item)| item.loc == takeover && self.owner(id) == original)
            .map(|(id, _)| id.clone())
            .collect();
        for id in homecoming {
            self.items.get_mut(&id).expect("item exists").loc = original;
        }
    }

    /// Mirrors a successful switch join (after which data whose owner
    /// changed migrates).
    pub fn join(&mut self, switch: usize, position: Point2, servers: usize) {
        self.members.insert(switch, Member { position, servers });
        self.cache_flush();
        self.migrate();
    }

    /// Mirrors the data loss of a crash: everything stored on `switch`
    /// becomes a tombstone. Called *before* [`Oracle::leave`], and alone
    /// when the crash removal failed connectivity checks (the real system
    /// drains the store before validating the removal).
    pub fn crash_drain(&mut self, switch: usize) {
        self.cache_flush();
        let lost: Vec<DataId> = self
            .items
            .iter()
            .filter(|(_, item)| item.loc.switch == switch)
            .map(|(id, _)| id.clone())
            .collect();
        for id in lost {
            self.items.remove(&id);
            self.tombstones.insert(id);
        }
        while self.tombstones.len() > MAX_TOMBSTONES {
            let oldest = self.tombstones.iter().next().cloned().expect("nonempty");
            self.tombstones.remove(&oldest);
        }
    }

    /// Mirrors a successful graceful removal of `switch`, in the same
    /// order as the real controller: retract extensions touching the
    /// switch (old membership), orphan its items, drop the member, re-home
    /// orphans under the new membership, then migrate everything whose
    /// owner changed.
    pub fn leave(&mut self, switch: usize) {
        self.cache_flush();
        let touching: Vec<ServerId> = self
            .extensions
            .iter()
            .filter(|(o, t)| o.switch == switch || t.switch == switch)
            .map(|(&o, _)| o)
            .collect();
        for original in touching {
            self.retract(original);
        }

        let orphans: Vec<DataId> = self
            .items
            .iter()
            .filter(|(_, item)| item.loc.switch == switch)
            .map(|(id, _)| id.clone())
            .collect();

        self.members.remove(&switch);

        for id in orphans {
            let target = self.placement_target(&id);
            self.items.get_mut(&id).expect("item exists").loc = target;
        }
        self.migrate();
    }

    /// Mirrors a clean (detour-free, `Ok`) retrieval populating some
    /// node's read cache: the currently stored payload enters the
    /// may-serve set. Returns `false` (and caches nothing) when `id` is
    /// not stored — a miss or a detoured stand-in answer admits
    /// nothing, matching the nodes' admission filter.
    pub fn cache_fill(&mut self, id: &DataId) -> bool {
        match self.items.get(id) {
            Some(item) => {
                self.cached.insert(id.clone(), item.payload.clone());
                true
            }
            None => false,
        }
    }

    /// Mirrors an `Invalidate` frame for `id` (or a local overwrite on
    /// an owner): the cached copy leaves the may-serve set.
    pub fn cache_invalidate(&mut self, id: &DataId) {
        self.cached.remove(id);
    }

    /// Mirrors the whole-cache flush every node performs when a new
    /// dataplane is installed (crash, leave, join): nothing cached
    /// before a topology change may be served after it.
    pub fn cache_flush(&mut self) {
        self.cached.clear();
    }

    /// What a cached read of `id` may answer right now, if anything.
    /// Under the maintenance discipline above this is always the
    /// currently stored payload — never a tombstoned or superseded one;
    /// the cache-coherence tests assert exactly that.
    pub fn cache_serve(&self, id: &DataId) -> Option<&Bytes> {
        self.cached.get(id)
    }

    /// Ids currently in the may-serve set, ascending.
    pub fn cached_ids(&self) -> impl Iterator<Item = &DataId> {
        self.cached.keys()
    }

    /// Moves every item whose location is neither its owner nor its
    /// owner's current target — the mirror of the controller's
    /// post-dynamics migration pass.
    fn migrate(&mut self) {
        let moves: Vec<(DataId, ServerId)> = self
            .items
            .iter()
            .filter_map(|(id, item)| {
                let owner = self.owner(id);
                let target = self.extension_of(owner).unwrap_or(owner);
                (item.loc != target && item.loc != owner).then(|| (id.clone(), target))
            })
            .collect();
        for (id, target) in moves {
            self.items.get_mut(&id).expect("item exists").loc = target;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gred::{GredConfig, GredNetwork};
    use gred_net::{waxman_topology, ServerPool, WaxmanConfig};

    fn net(switches: usize, seed: u64) -> GredNetwork {
        let (topo, _) = waxman_topology(&WaxmanConfig::with_switches(switches, seed));
        let pool = ServerPool::uniform(switches, 2, 100_000);
        let config = GredConfig {
            auto_extend: false,
            ..GredConfig::with_iterations(2).seeded(seed)
        };
        GredNetwork::build(topo, pool, config).unwrap()
    }

    #[test]
    fn owner_matches_network_responsible_server() {
        for seed in [1u64, 2, 3] {
            let n = net(14, seed);
            let oracle = Oracle::from_network(&n);
            for i in 0..200 {
                let id = DataId::new(format!("agree/{seed}/{i}"));
                assert_eq!(
                    oracle.owner(&id),
                    n.responsible_server(&id),
                    "seed {seed} id {i}: oracle and network disagree on the owner"
                );
            }
        }
    }

    #[test]
    fn place_and_retract_round_trip() {
        let mut n = net(10, 5);
        let mut oracle = Oracle::from_network(&n);
        let id = DataId::new("round-trip");
        let owner = n.responsible_server(&id);

        let takeover = n.extend_range(owner).unwrap();
        oracle.extend(owner, takeover);
        let receipt = n.place(&id, b"v".as_ref(), 0).unwrap();
        oracle.place(id.clone(), b"v".as_ref());
        assert_eq!(oracle.items().next().unwrap().1.loc, receipt.server);

        n.retract_range(owner).unwrap();
        oracle.retract(owner);
        assert_eq!(oracle.items().next().unwrap().1.loc, owner);
        assert_eq!(n.retrieve(&id, 0).unwrap().server, owner);
        assert!(oracle.extensions().is_empty());
    }

    #[test]
    fn crash_drain_tombstones_only_the_victim() {
        let mut n = net(10, 6);
        let mut oracle = Oracle::from_network(&n);
        for i in 0..40 {
            let id = DataId::new(format!("c/{i}"));
            let payload = format!("p/{i}");
            n.place(&id, payload.clone(), 0).unwrap();
            oracle.place(id, payload);
        }
        let victim = oracle.items().next().unwrap().1.loc.switch;
        let at_victim = oracle
            .items()
            .filter(|(_, it)| it.loc.switch == victim)
            .count();
        assert!(at_victim > 0);
        let before = oracle.item_count();
        oracle.crash_drain(victim);
        assert_eq!(oracle.item_count(), before - at_victim);
        assert_eq!(oracle.tombstones().count(), at_victim);
    }

    #[test]
    fn cache_fill_serves_until_the_next_write() {
        let n = net(8, 9);
        let mut oracle = Oracle::from_network(&n);
        let id = DataId::new("cache/coherent");
        assert!(!oracle.cache_fill(&id), "a miss admits nothing");
        oracle.place(id.clone(), b"v1".as_ref());
        assert!(oracle.cache_fill(&id));
        assert_eq!(oracle.cache_serve(&id).unwrap().as_ref(), b"v1");
        // The write-through invalidation is part of the write itself:
        // after place, the stale copy is gone, not merely flagged.
        oracle.place(id.clone(), b"v2".as_ref());
        assert!(oracle.cache_serve(&id).is_none(), "superseded copy served");
        assert!(oracle.cache_fill(&id));
        assert_eq!(oracle.cache_serve(&id).unwrap().as_ref(), b"v2");
        oracle.cache_invalidate(&id);
        assert!(oracle.cache_serve(&id).is_none());
    }

    #[test]
    fn crash_flush_prevents_tombstone_resurrection() {
        let n = net(10, 11);
        let mut oracle = Oracle::from_network(&n);
        let id = DataId::new("cache/doomed");
        oracle.place(id.clone(), b"precious".as_ref());
        assert!(oracle.cache_fill(&id));
        let victim = oracle.items().next().unwrap().1.loc.switch;
        oracle.crash_drain(victim);
        assert!(oracle.tombstones().any(|t| *t == id));
        assert!(
            oracle.cache_serve(&id).is_none(),
            "a cached read resurrected a crash-tombstoned value"
        );
        assert_eq!(oracle.cached_ids().count(), 0, "crash flushes everything");
    }

    /// Drives fifty seeded churn schedules — writes over a small hot
    /// key set, cache fills, crashes, leaves, re-joins — and asserts
    /// after every step that anything the cache may serve is exactly
    /// the currently stored payload: never tombstoned, never
    /// superseded.
    #[test]
    fn cache_never_serves_stale_across_seeded_churn() {
        for seed in 0u64..50 {
            let mut rng = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
            let mut step = move || {
                // xorshift64: cheap, deterministic, dependency-free.
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                rng
            };
            let n = net(8, 21 + seed % 3);
            let mut oracle = Oracle::from_network(&n);
            let keys: Vec<DataId> = (0..6)
                .map(|k| DataId::new(format!("churn/{seed}/{k}")))
                .collect();
            for round in 0..120 {
                let key = &keys[(step() % keys.len() as u64) as usize];
                match step() % 10 {
                    0..=3 => oracle.place(key.clone(), format!("{seed}/{round}")),
                    4..=7 => {
                        let _ = oracle.cache_fill(key);
                    }
                    8 => {
                        let ids = oracle.member_ids();
                        let victim = ids[(step() % ids.len() as u64) as usize];
                        oracle.crash_drain(victim);
                    }
                    _ => {
                        let ids = oracle.member_ids();
                        if ids.len() > 2 {
                            let leaver = ids[(step() % ids.len() as u64) as usize];
                            let member = oracle.member(leaver).unwrap().clone();
                            oracle.leave(leaver);
                            oracle.join(leaver, member.position, member.servers);
                        }
                    }
                }
                for key in &keys {
                    if let Some(served) = oracle.cache_serve(key) {
                        let stored =
                            oracle
                                .items()
                                .find(|(id, _)| *id == key)
                                .unwrap_or_else(|| {
                                    panic!(
                                        "seed {seed} round {round}: cache serves a dropped {key}"
                                    )
                                });
                        assert_eq!(
                            served, &stored.1.payload,
                            "seed {seed} round {round}: cache serves a superseded payload"
                        );
                        assert!(
                            !oracle.tombstones().any(|t| t == key),
                            "seed {seed} round {round}: cache serves a tombstoned id"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn tombstones_are_bounded() {
        let mut oracle = Oracle::default();
        oracle.members.insert(
            0,
            Member {
                position: Point2::new(0.0, 0.0),
                servers: 1,
            },
        );
        for i in 0..200 {
            oracle.place(DataId::new(format!("t/{i}")), Bytes::new());
        }
        oracle.crash_drain(0);
        assert!(oracle.tombstones().count() <= MAX_TOMBSTONES);
        assert_eq!(oracle.item_count(), 0);
    }
}
