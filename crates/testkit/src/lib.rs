#![warn(missing_docs)]

//! Deterministic model-based testing for GRED.
//!
//! The paper's correctness claims — greedy forwarding always reaches the
//! member switch nearest `H(d)` (Theorem 1), and placement/retrieval
//! survive range extension and switch dynamics (Sections V–VI) — are easy
//! to exercise on happy paths and hard to trust under churn. This crate
//! closes that gap with a classic model-based harness:
//!
//! - [`schedule`] turns a `(seed, length)` pair into a randomized but
//!   fully deterministic sequence of operations (place, retrieve,
//!   replicate, extend, retract, join, leave, crash);
//! - [`oracle`] is a deliberately simple in-memory reference model that
//!   mirrors where every datum must live, using the same exact lattice
//!   arithmetic as the production Delaunay code;
//! - [`invariants`] checks the real [`gred::GredNetwork`] against the
//!   oracle after every step: Theorem 1 delivery from every member,
//!   empty-circumcircle validity of the live DT, retrievability of every
//!   oracle-stored datum, and forwarding-table hygiene;
//! - [`counters`] turns wire-scraped [`gred_dataplane::StatsSnapshot`]s
//!   into delta assertions, so chaos properties once established by
//!   grepping logs ("detours stopped", "the cache absorbed the crowd")
//!   become exact counter arithmetic;
//! - [`harness`] ties it together, injects faults ([`Mutation`]) for
//!   checker smoke-tests, prints a one-line reproduction command on
//!   failure, and greedily shrinks failing schedules.
//!
//! A failure report names only `(seed, schedule length)`; re-running with
//! the same pair replays the identical schedule, network, and checks.

pub mod chaos;
pub mod counters;
pub mod harness;
pub mod invariants;
pub mod oracle;
pub mod schedule;
pub mod transport;

pub use chaos::{ChaosAction, ChaosEvent, ChaosPlan};
pub use counters::CounterWindow;
pub use harness::{Failure, Harness, HarnessConfig, Mutation, RunOutcome, RunStats};
pub use oracle::Oracle;
pub use schedule::{generate, Op};
pub use transport::TransportProbe;
