//! The model-based harness: builds a real network, drives it and the
//! oracle through a schedule, checks invariants after every step, injects
//! faults, and shrinks failing schedules.

use crate::invariants::check_all;
use crate::oracle::Oracle;
use crate::schedule::{generate, Op};
use crate::transport::TransportProbe;
use gred::{GredConfig, GredError, GredNetwork};
use gred_hash::DataId;
use gred_net::{waxman_topology, ServerId, ServerPool, WaxmanConfig};

/// Shape of the network a run starts from and the bounds it respects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HarnessConfig {
    /// Initial switch count (Waxman topology, connectivity guaranteed).
    pub switches: usize,
    /// Servers behind each initial switch.
    pub servers_per_switch: usize,
    /// Capacity of every server — large, so placements never fill them
    /// and capacity errors stay out of scope.
    pub capacity: u64,
    /// Joins are skipped once the topology reaches this many switches.
    pub max_switches: usize,
    /// Leaves/crashes are skipped at or below this many members.
    pub min_members: usize,
    /// C-regulation iterations for the initial build (kept small: the
    /// harness exercises protocol logic, not embedding quality).
    pub regulation_iterations: usize,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            switches: 10,
            servers_per_switch: 2,
            capacity: 100_000,
            max_switches: 16,
            min_members: 4,
            regulation_iterations: 2,
        }
    }
}

/// A fault injected mid-run to prove the checkers catch it. The mutation
/// corrupts the *network* behind the oracle's back, so a correct checker
/// must fail the step it lands on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Silently delete the first oracle-tracked item from its server
    /// (caught by the retrievability invariant).
    DropItem {
        /// Step after which the fault is injected.
        step: usize,
    },
    /// Remove one DT neighbor entry from a member's forwarding table
    /// (caught by table hygiene, and often by Theorem 1 delivery).
    DropNeighborEntry {
        /// Step after which the fault is injected.
        step: usize,
    },
    /// Clear every relay entry on one switch that has them (caught by the
    /// network's own relay-chain audit).
    BreakRelays {
        /// Step after which the fault is injected.
        step: usize,
    },
}

impl Mutation {
    fn step(&self) -> usize {
        match *self {
            Mutation::DropItem { step }
            | Mutation::DropNeighborEntry { step }
            | Mutation::BreakRelays { step } => step,
        }
    }
}

/// Operation counts from one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Items placed (including replicas).
    pub placed: usize,
    /// Retrievals attempted (present and missing).
    pub retrieved: usize,
    /// Range extensions installed.
    pub extended: usize,
    /// Range extensions retracted.
    pub retracted: usize,
    /// Switches joined.
    pub joined: usize,
    /// Switches removed gracefully.
    pub left: usize,
    /// Switches crashed.
    pub crashed: usize,
    /// Operations skipped by a bound (member floor, switch ceiling) or a
    /// legitimately rejected dynamic (disconnection).
    pub skipped: usize,
}

/// The first failing step of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Failure {
    /// Zero-based index of the failing step.
    pub step: usize,
    /// The operation executed at that step.
    pub op: Op,
    /// Every invariant violation detected after the step.
    pub violations: Vec<String>,
}

/// Result of a full run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// Seed that generated (and reproduces) the schedule.
    pub seed: u64,
    /// Scheduled length of the run.
    pub ops: usize,
    /// Operation counts.
    pub stats: RunStats,
    /// The first failing step, if any.
    pub failure: Option<Failure>,
    /// Whether an injected [`Mutation`] actually fired (e.g. `DropItem`
    /// with an empty store cannot).
    pub mutation_applied: bool,
}

impl RunOutcome {
    /// The single line that reproduces this run end to end.
    pub fn repro_line(&self) -> String {
        format!(
            "cargo run -p gred-sim --bin repro -- soak --seed {} --ops {}",
            self.seed, self.ops
        )
    }
}

/// Drives one `GredNetwork` + [`Oracle`] pair through schedules.
#[derive(Debug, Clone)]
pub struct Harness {
    config: HarnessConfig,
}

impl Harness {
    /// A harness over the given configuration.
    pub fn new(config: HarnessConfig) -> Harness {
        Harness { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &HarnessConfig {
        &self.config
    }

    /// Generates the schedule for `(seed, len)` and replays it.
    pub fn run_seeded(&self, seed: u64, len: usize, mutation: Option<Mutation>) -> RunOutcome {
        self.replay(seed, &generate(seed, len), mutation)
    }

    /// Replays an explicit schedule (used by shrinking, which must re-run
    /// truncated/shortened op sequences under the same seed).
    pub fn replay(&self, seed: u64, ops: &[Op], mutation: Option<Mutation>) -> RunOutcome {
        self.replay_impl(seed, ops, mutation, None)
    }

    /// Replays a schedule while mirroring every data operation onto
    /// `probe` (e.g. a socket-backed cluster): transport divergence
    /// fails the run exactly like a model divergence. Fault injection is
    /// not combined with probing — a mutation corrupts the network
    /// behind the transport's back, which only measures how stale the
    /// probe's copy is.
    pub fn replay_probed(
        &self,
        seed: u64,
        ops: &[Op],
        probe: &mut dyn TransportProbe,
    ) -> RunOutcome {
        self.replay_impl(seed, ops, None, Some(probe))
    }

    fn replay_impl(
        &self,
        seed: u64,
        ops: &[Op],
        mutation: Option<Mutation>,
        mut probe: Option<&mut dyn TransportProbe>,
    ) -> RunOutcome {
        let cfg = &self.config;
        let (topo, _) = waxman_topology(&WaxmanConfig::with_switches(cfg.switches, seed));
        let pool = ServerPool::uniform(cfg.switches, cfg.servers_per_switch, cfg.capacity);
        let gred_cfg = GredConfig {
            auto_extend: false,
            ..GredConfig::with_iterations(cfg.regulation_iterations).seeded(seed)
        };
        let mut net =
            GredNetwork::build(topo, pool, gred_cfg).expect("harness network always builds");
        let mut oracle = Oracle::from_network(&net);

        let mut stats = RunStats::default();
        let mut mutation_applied = false;
        for (step, &op) in ops.iter().enumerate() {
            let mut violations = self.exec_op(
                &mut net,
                &mut oracle,
                seed,
                step,
                op,
                &mut stats,
                &mut probe,
            );

            if let Some(m) = mutation {
                // Clamp so a mutation at/after the end still fires on the
                // last step; inject after the op, before the checks, so
                // the failure lands deterministically on this step.
                if step == m.step().min(ops.len().saturating_sub(1)) {
                    mutation_applied = apply_mutation(&mut net, &oracle, m);
                }
            }

            let probe = DataId::new(format!("probe/{seed}/{step}"));
            violations.extend(check_all(&net, &oracle, &probe, step));
            if !violations.is_empty() {
                return RunOutcome {
                    seed,
                    ops: ops.len(),
                    stats,
                    failure: Some(Failure {
                        step,
                        op,
                        violations,
                    }),
                    mutation_applied,
                };
            }
        }
        RunOutcome {
            seed,
            ops: ops.len(),
            stats,
            failure: None,
            mutation_applied,
        }
    }

    /// Greedy drop-one minimization of a failing schedule: the returned
    /// subsequence still fails and removing any single op from it no
    /// longer does.
    pub fn shrink(&self, seed: u64, ops: &[Op], mutation: Option<Mutation>) -> Vec<Op> {
        proptest::shrink::minimize_sequence(ops, |candidate| {
            self.replay(seed, candidate, mutation).failure.is_some()
        })
    }

    /// Executes one op against network and oracle, returning semantic
    /// violations (wrong receipt, unexpected error, model divergence).
    /// When a probe is attached, data operations are mirrored onto it
    /// and state changes trigger a resync.
    #[allow(clippy::too_many_arguments)]
    fn exec_op(
        &self,
        net: &mut GredNetwork,
        oracle: &mut Oracle,
        seed: u64,
        step: usize,
        op: Op,
        stats: &mut RunStats,
        probe: &mut Option<&mut dyn TransportProbe>,
    ) -> Vec<String> {
        let mut v = Vec::new();
        let members = net.members().to_vec();
        let access = members[(seed as usize + step) % members.len()];
        match op {
            Op::Place { key } => {
                let id = DataId::new(format!("key/{}", key % 48));
                let payload = format!("payload/{seed}/{step}");
                match net.place(&id, payload.clone(), access) {
                    Ok(receipt) => {
                        let expected = oracle.placement_target(&id);
                        if receipt.server != expected {
                            v.push(format!(
                                "place {id:?}: landed on {} but oracle expects {expected}",
                                receipt.server
                            ));
                        }
                        if let Some(p) = probe.as_deref_mut() {
                            v.extend(p.place(net, access, &id, payload.as_bytes(), receipt.server));
                        }
                        oracle.place(id, payload);
                        stats.placed += 1;
                    }
                    Err(e) => v.push(format!("place {id:?} from {access} failed: {e}")),
                }
            }
            Op::Retrieve { pick } => {
                stats.retrieved += 1;
                if oracle.item_count() > 0 && pick % 4 != 0 {
                    let nth = pick as usize % oracle.item_count();
                    let (id, item) = oracle.items().nth(nth).expect("nth < count");
                    let (id, expected) = (id.clone(), item.clone());
                    match net.retrieve(&id, access) {
                        Ok(res) => {
                            if res.payload != expected.payload || res.server != expected.loc {
                                v.push(format!(
                                    "retrieve {id:?}: wrong payload or server \
                                     (got {}, oracle has {})",
                                    res.server, expected.loc
                                ));
                            }
                            if let Some(p) = probe.as_deref_mut() {
                                v.extend(p.retrieve(net, access, &id, &expected.payload));
                            }
                        }
                        Err(e) => v.push(format!("retrieve {id:?} from {access} failed: {e}")),
                    }
                } else {
                    let id = DataId::new(format!("missing/{pick}"));
                    match net.retrieve(&id, access) {
                        Err(GredError::NotFound) => {
                            if let Some(p) = probe.as_deref_mut() {
                                v.extend(p.retrieve_missing(net, access, &id));
                            }
                        }
                        Ok(res) => v.push(format!(
                            "retrieve of never-placed {id:?} returned data from {}",
                            res.server
                        )),
                        Err(e) => v.push(format!("retrieve of never-placed {id:?}: {e}")),
                    }
                }
            }
            Op::PlaceReplicated { key, copies } => {
                let id = DataId::new(format!("key/{}", key % 48));
                let payload = format!("payload/{seed}/{step}");
                match net.place_replicated(&id, payload.clone(), copies, access) {
                    Ok(receipts) => {
                        for (serial, receipt) in receipts.iter().enumerate() {
                            let rid = id.replica(serial as u32);
                            let expected = oracle.placement_target(&rid);
                            if receipt.server != expected {
                                v.push(format!(
                                    "replicate {rid:?}: landed on {} but oracle expects {expected}",
                                    receipt.server
                                ));
                            }
                            if let Some(p) = probe.as_deref_mut() {
                                v.extend(p.place(
                                    net,
                                    access,
                                    &rid,
                                    payload.as_bytes(),
                                    receipt.server,
                                ));
                            }
                            oracle.place(rid, payload.clone());
                            stats.placed += 1;
                        }
                    }
                    Err(e) => v.push(format!("replicate {id:?} x{copies}: {e}")),
                }
            }
            Op::ExtendRange { pick } => {
                let servers: Vec<ServerId> = net.pool().iter_ids().collect();
                let original = servers[pick as usize % servers.len()];
                match net.extend_range(original) {
                    Ok(takeover) => {
                        if oracle.extension_of(original).is_some() {
                            v.push(format!(
                                "extend {original}: succeeded but oracle already has an extension"
                            ));
                        }
                        oracle.extend(original, takeover);
                        stats.extended += 1;
                        if let Some(p) = probe.as_deref_mut() {
                            v.extend(p.resync(net));
                        }
                    }
                    Err(GredError::AlreadyExtended { .. }) => {
                        if oracle.extension_of(original).is_none() {
                            v.push(format!(
                                "extend {original}: AlreadyExtended but oracle has none"
                            ));
                        }
                    }
                    // Every live switch carries roomy servers, so a
                    // missing candidate means the tables are wrong.
                    Err(e) => v.push(format!("extend {original}: {e}")),
                }
            }
            Op::RetractExtension { pick } => {
                let active = oracle.extensions();
                if !active.is_empty() && pick % 5 != 0 {
                    let (original, _) = active[pick as usize % active.len()];
                    match net.retract_range(original) {
                        Ok(()) => {
                            oracle.retract(original);
                            stats.retracted += 1;
                            if let Some(p) = probe.as_deref_mut() {
                                v.extend(p.resync(net));
                            }
                        }
                        Err(e) => v.push(format!("retract {original}: {e}")),
                    }
                } else {
                    let servers: Vec<ServerId> = net.pool().iter_ids().collect();
                    let original = servers[pick as usize % servers.len()];
                    match net.retract_range(original) {
                        Ok(()) => {
                            if oracle.extension_of(original).is_none() {
                                v.push(format!(
                                    "retract {original}: succeeded but oracle has no extension"
                                ));
                            }
                            oracle.retract(original);
                            stats.retracted += 1;
                            if let Some(p) = probe.as_deref_mut() {
                                v.extend(p.resync(net));
                            }
                        }
                        Err(GredError::UnknownServer { .. }) => {
                            if oracle.extension_of(original).is_some() {
                                v.push(format!(
                                    "retract {original}: UnknownServer but oracle has one active"
                                ));
                            }
                        }
                        Err(e) => v.push(format!("retract {original}: {e}")),
                    }
                }
            }
            Op::SwitchJoin { pick, servers } => {
                if net.topology().switch_count() >= self.config.max_switches {
                    stats.skipped += 1;
                    return v;
                }
                let a = members[pick as usize % members.len()];
                let b = members[(pick as usize / 7) % members.len()];
                let mut links = vec![a];
                if b != a {
                    links.push(b);
                }
                let capacities = vec![self.config.capacity; servers as usize];
                match net.add_switch(&links, capacities) {
                    Ok(s) => {
                        let position = net
                            .position_of_switch(s)
                            .expect("joined switch has a position");
                        oracle.join(s, position, servers as usize);
                        stats.joined += 1;
                        if let Some(p) = probe.as_deref_mut() {
                            v.extend(p.resync(net));
                        }
                    }
                    Err(e) => v.push(format!("join linked to {links:?}: {e}")),
                }
            }
            Op::SwitchLeave { pick } => {
                if members.len() <= self.config.min_members {
                    stats.skipped += 1;
                    return v;
                }
                let victim = members[pick as usize % members.len()];
                match net.remove_switch(victim) {
                    Ok(()) => {
                        oracle.leave(victim);
                        stats.left += 1;
                        if let Some(p) = probe.as_deref_mut() {
                            v.extend(p.resync(net));
                        }
                    }
                    Err(GredError::Disconnected) => stats.skipped += 1,
                    Err(e) => v.push(format!("remove switch {victim}: {e}")),
                }
            }
            Op::SwitchFail { pick } => {
                if members.len() <= self.config.min_members {
                    stats.skipped += 1;
                    return v;
                }
                let victim = members[pick as usize % members.len()];
                match net.crash_switch(victim) {
                    Ok(()) => {
                        oracle.crash_drain(victim);
                        oracle.leave(victim);
                        stats.crashed += 1;
                        if let Some(p) = probe.as_deref_mut() {
                            v.extend(p.resync(net));
                        }
                    }
                    Err(GredError::Disconnected) => {
                        // The real crash drains data *before* the failed
                        // connectivity check: data is lost, membership
                        // stays. Mirror exactly that.
                        oracle.crash_drain(victim);
                        stats.skipped += 1;
                        if let Some(p) = probe.as_deref_mut() {
                            v.extend(p.resync(net));
                        }
                    }
                    Err(e) => v.push(format!("crash switch {victim}: {e}")),
                }
            }
        }
        v
    }
}

impl Default for Harness {
    fn default() -> Self {
        Harness::new(HarnessConfig::default())
    }
}

/// Applies `m` to the network only — the oracle is left believing the old
/// state, which a sound checker must notice. Returns whether the fault
/// had anything to corrupt.
fn apply_mutation(net: &mut GredNetwork, oracle: &Oracle, m: Mutation) -> bool {
    match m {
        Mutation::DropItem { .. } => {
            let Some((id, item)) = oracle.items().next() else {
                return false;
            };
            let (id, loc) = (id.clone(), item.loc);
            net.expire(loc, &id).is_some()
        }
        Mutation::DropNeighborEntry { .. } => {
            let target = net.members().iter().copied().find_map(|s| {
                net.dataplanes()[s]
                    .neighbor_entries()
                    .next()
                    .map(|e| (s, e.neighbor))
            });
            let Some((switch, neighbor)) = target else {
                return false;
            };
            net.dataplane_debug_mut(switch)
                .remove_neighbor(neighbor)
                .is_some()
        }
        Mutation::BreakRelays { .. } => {
            let target = (0..net.topology().switch_count())
                .find(|&s| net.dataplanes()[s].relay_entries().next().is_some());
            let Some(switch) = target else {
                return false;
            };
            net.dataplane_debug_mut(switch).clear_relays();
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_short_run_passes() {
        let outcome = Harness::default().run_seeded(11, 40, None);
        assert!(outcome.failure.is_none(), "failure: {:?}", outcome.failure);
        assert!(outcome.stats.placed > 0);
        assert!(outcome.stats.retrieved > 0);
    }

    #[test]
    fn replay_is_deterministic() {
        let h = Harness::default();
        let a = h.run_seeded(5, 60, None);
        let b = h.run_seeded(5, 60, None);
        assert_eq!(a, b);
    }

    #[test]
    fn repro_line_names_seed_and_ops() {
        let outcome = Harness::default().run_seeded(99, 10, None);
        let line = outcome.repro_line();
        assert!(line.contains("--seed 99"), "{line}");
        assert!(line.contains("--ops 10"), "{line}");
    }

    #[test]
    fn dropped_item_is_caught_at_the_injection_step() {
        let h = Harness::default();
        let outcome = h.run_seeded(21, 50, Some(Mutation::DropItem { step: 20 }));
        assert!(outcome.mutation_applied);
        let failure = outcome.failure.expect("checker must catch the fault");
        assert_eq!(failure.step, 20);
        assert!(failure.violations.iter().any(|s| s.contains("retriev")));
    }

    #[test]
    fn dropped_neighbor_entry_is_caught() {
        let h = Harness::default();
        let outcome = h.run_seeded(22, 30, Some(Mutation::DropNeighborEntry { step: 8 }));
        assert!(outcome.mutation_applied);
        let failure = outcome.failure.expect("checker must catch the fault");
        assert_eq!(failure.step, 8);
    }
}
