//! Optional transport hook: mirror data operations onto an external
//! transport and report divergence.
//!
//! The harness normally drives a [`GredNetwork`] through direct method
//! calls. A [`TransportProbe`] lets the *same schedule* additionally
//! exercise a real transport — e.g. `gred-cluster`'s socket-backed node
//! runtime — and compare what a remote client observes against what the
//! in-process model just did. Each callback returns violations in the
//! same `Vec<String>` currency as the invariant checkers, so a transport
//! divergence fails a probed run exactly like a model divergence.
//!
//! The hook stays a trait (dependency-free) because the testkit cannot
//! depend on any concrete transport: `gred-cluster` depends on the
//! testkit to implement this trait, not the other way around.

use gred::GredNetwork;
use gred_hash::DataId;
use gred_net::ServerId;

/// Mirrors harness data operations onto an external transport.
///
/// Callbacks fire *after* the in-process network applied the operation
/// successfully, so implementations can trust `net` to reflect the
/// post-op state. Dynamics (joins, leaves, crashes) and extension
/// changes arrive as [`resync`](TransportProbe::resync): forwarding
/// state changed and the transport must rebuild or reload it.
pub trait TransportProbe {
    /// `id` was placed via `access` and landed on `expected`; replay the
    /// placement over the transport and compare.
    fn place(
        &mut self,
        net: &GredNetwork,
        access: usize,
        id: &DataId,
        payload: &[u8],
        expected: ServerId,
    ) -> Vec<String>;

    /// `id` was retrieved via `access` and returned `expected_payload`;
    /// replay the retrieval over the transport and compare.
    fn retrieve(
        &mut self,
        net: &GredNetwork,
        access: usize,
        id: &DataId,
        expected_payload: &[u8],
    ) -> Vec<String>;

    /// A retrieval of never-placed `id` via `access` correctly reported
    /// "not found"; the transport must agree.
    fn retrieve_missing(&mut self, net: &GredNetwork, access: usize, id: &DataId) -> Vec<String>;

    /// Forwarding or storage state changed (dynamics, extension
    /// installed/retracted, crash drain): resynchronize with `net`.
    fn resync(&mut self, net: &GredNetwork) -> Vec<String>;
}
