//! Deterministic chaos schedules.
//!
//! A chaos plan is a pure function of its generation parameters: the same
//! `(seed, ops, kills, link_faults)` quadruple always yields the same
//! event list, so a failing chaos run reproduces from the numbers in its
//! failure report alone. Like [`crate::schedule`], events carry abstract
//! `u32` picks rather than concrete node ids — the runner resolves each
//! pick against live membership when the event fires, so one plan stays
//! meaningful across topologies of different sizes.
//!
//! The plan only *describes* faults; executing them (severing sockets,
//! killing node threads, rebooting slots) is the runner's job — see
//! `gred-cluster`'s chaos fabric.

use rand::{rngs::StdRng, Rng, SeedableRng};

/// Domain-mixing constant so the chaos stream differs from the operation
/// schedule generated from the same user-facing seed.
const CHAOS_DOMAIN: u64 = 0x5EED_C4A0_5FAB_0002;

/// One fault (or repair) to inject. Node and link endpoints are abstract
/// picks, resolved modulo live membership by the runner at fire time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// Abruptly kill a node: its listener closes, every peer link to it
    /// dies mid-stream, and its unreplicated data is lost.
    KillNode {
        /// Abstract victim selector.
        pick: u32,
    },
    /// Sever one directed link: new bytes are refused, in-flight
    /// connections reset. The reverse direction stays up.
    SeverLink {
        /// Abstract source selector.
        from: u32,
        /// Abstract destination selector.
        to: u32,
    },
    /// Black-hole one directed link: bytes are accepted and silently
    /// dropped, so the sender discovers the fault only by timeout.
    BlackHoleLink {
        /// Abstract source selector.
        from: u32,
        /// Abstract destination selector.
        to: u32,
    },
    /// Delay one directed link by `millis` per chunk without reordering.
    DelayLink {
        /// Abstract source selector.
        from: u32,
        /// Abstract destination selector.
        to: u32,
        /// Added one-way latency in milliseconds.
        millis: u16,
    },
    /// Restore one directed link to transparent forwarding.
    HealLink {
        /// Abstract source selector.
        from: u32,
        /// Abstract destination selector.
        to: u32,
    },
}

/// A [`ChaosAction`] anchored to the workload step before which it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosEvent {
    /// Fire before the workload issues operation number `at_op`.
    pub at_op: usize,
    /// What to inject.
    pub action: ChaosAction,
}

/// A complete, replayable fault schedule for one chaos run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosPlan {
    /// The seed the plan was generated from (for failure reports).
    pub seed: u64,
    /// Events sorted by [`ChaosEvent::at_op`]; ties keep generation
    /// order.
    pub events: Vec<ChaosEvent>,
}

impl ChaosPlan {
    /// Generates the plan for a run of `ops` workload operations with
    /// `kills` node crashes and `link_faults` transient link faults.
    /// Deterministic: equal inputs give equal output on every platform.
    ///
    /// Kills are spread across the middle of the run — never before a
    /// tenth of the workload has executed (so there is data to lose) and
    /// never in the final tenth (so recovery and the final audit see the
    /// crash). Each link fault picks sever / black-hole / delay and heals
    /// itself after a bounded number of operations.
    pub fn generate(seed: u64, ops: usize, kills: usize, link_faults: usize) -> ChaosPlan {
        let mut rng = StdRng::seed_from_u64(seed ^ CHAOS_DOMAIN);
        let mut events = Vec::new();
        let ops = ops.max(10);

        // One kill per window of the usable middle span, jittered.
        let span = (ops * 8) / 10;
        let window = span / (kills.max(1));
        for k in 0..kills {
            let base = ops / 10 + k * window;
            let jitter = rng.gen_range(0..window.max(1) / 2 + 1);
            events.push(ChaosEvent {
                at_op: base + jitter,
                action: ChaosAction::KillNode {
                    pick: rng.gen_range(0u32..1_000_000),
                },
            });
        }

        for _ in 0..link_faults {
            let at_op = rng.gen_range(ops / 10..(ops * 9) / 10);
            let from = rng.gen_range(0u32..1_000_000);
            let to = rng.gen_range(0u32..1_000_000);
            let action = match rng.gen_range(0u32..100) {
                0..=39 => ChaosAction::SeverLink { from, to },
                40..=69 => ChaosAction::BlackHoleLink { from, to },
                _ => ChaosAction::DelayLink {
                    from,
                    to,
                    millis: rng.gen_range(1u16..20),
                },
            };
            events.push(ChaosEvent { at_op, action });
            let heal_after = rng.gen_range(ops / 20..ops / 5 + 2);
            events.push(ChaosEvent {
                at_op: (at_op + heal_after).min(ops - 1),
                action: ChaosAction::HealLink { from, to },
            });
        }

        events.sort_by_key(|e| e.at_op);
        ChaosPlan { seed, events }
    }

    /// Events firing before operation `op`, in order. The runner calls
    /// this with a cursor it advances itself; the method exists so ad-hoc
    /// inspection (artifact dumps, tests) needs no cursor bookkeeping.
    pub fn due_before(&self, op: usize) -> impl Iterator<Item = &ChaosEvent> {
        self.events.iter().filter(move |e| e.at_op <= op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        let a = ChaosPlan::generate(42, 500, 2, 6);
        let b = ChaosPlan::generate(42, 500, 2, 6);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = ChaosPlan::generate(1, 500, 2, 6);
        let b = ChaosPlan::generate(2, 500, 2, 6);
        assert_ne!(a, b, "plans should not collide across seeds");
    }

    #[test]
    fn kills_land_in_the_middle_and_events_are_sorted() {
        let plan = ChaosPlan::generate(7, 500, 3, 10);
        let kills: Vec<usize> = plan
            .events
            .iter()
            .filter(|e| matches!(e.action, ChaosAction::KillNode { .. }))
            .map(|e| e.at_op)
            .collect();
        assert_eq!(kills.len(), 3);
        for at in kills {
            assert!((50..450).contains(&at), "kill at {at} outside middle span");
        }
        assert!(plan.events.windows(2).all(|w| w[0].at_op <= w[1].at_op));
        assert!(plan.events.iter().all(|e| e.at_op < 500));
    }

    #[test]
    fn every_link_fault_heals() {
        let plan = ChaosPlan::generate(99, 500, 0, 8);
        let faults = plan
            .events
            .iter()
            .filter(|e| {
                matches!(
                    e.action,
                    ChaosAction::SeverLink { .. }
                        | ChaosAction::BlackHoleLink { .. }
                        | ChaosAction::DelayLink { .. }
                )
            })
            .count();
        let heals = plan
            .events
            .iter()
            .filter(|e| matches!(e.action, ChaosAction::HealLink { .. }))
            .count();
        assert_eq!(faults, 8);
        assert_eq!(heals, 8, "each fault schedules its own repair");
    }
}
