//! The four invariant families checked after every schedule step.
//!
//! Each check returns human-readable violation strings instead of
//! panicking, so the harness can attach the failing step and its
//! reproduction line before surfacing them.

use crate::oracle::Oracle;
use gred::plane::forwarding::route;
use gred::{GredError, GredNetwork};
use gred_geometry::empty_circumcircle_violation;
use gred_hash::DataId;

/// Runs every invariant family. `probe` must be an id never placed by the
/// schedule (fresh per step), used for the Theorem 1 delivery check;
/// `rotation` varies the access switch used per stored item so different
/// steps exercise different entry points.
pub fn check_all(
    net: &GredNetwork,
    oracle: &Oracle,
    probe: &DataId,
    rotation: usize,
) -> Vec<String> {
    let mut v = Vec::new();
    check_theorem1(net, oracle, probe, &mut v);
    check_delaunay(net, &mut v);
    check_retrievability(net, oracle, rotation, &mut v);
    check_table_hygiene(net, oracle, &mut v);
    v
}

/// Invariant 1 (Theorem 1): greedy forwarding from *every* member switch
/// reaches the server the oracle's brute-force nearest scan names.
fn check_theorem1(net: &GredNetwork, oracle: &Oracle, probe: &DataId, out: &mut Vec<String>) {
    let expected = oracle.owner(probe);
    let position = net.position_of_id(probe);
    for &from in net.members() {
        match route(net.dataplanes(), from, position, probe) {
            Ok(r) => {
                if r.server != expected {
                    out.push(format!(
                        "theorem1: route from {from} for {probe:?} ended at {} (dest {}), \
                         oracle says {expected}",
                        r.server, r.dest
                    ));
                }
            }
            Err(e) => out.push(format!(
                "theorem1: route from {from} for {probe:?} failed: {e}"
            )),
        }
    }
}

/// Invariant 2: the live DT is a valid Delaunay triangulation of the
/// member positions (exact empty-circumcircle test). Collinear member
/// sets degrade to a path and carry no triangles to check.
fn check_delaunay(net: &GredNetwork, out: &mut Vec<String>) {
    let tri = net.dt().triangulation();
    if tri.is_collinear() {
        return;
    }
    if let Some((t, p)) = empty_circumcircle_violation(tri.points(), tri.triangles()) {
        out.push(format!(
            "delaunay: triangle {t} has point {p} inside its circumcircle"
        ));
    }
}

/// Invariant 3: every datum the oracle holds is retrievable with the
/// oracle's payload from the oracle's location; every tombstoned datum is
/// gone.
fn check_retrievability(
    net: &GredNetwork,
    oracle: &Oracle,
    rotation: usize,
    out: &mut Vec<String>,
) {
    let members = net.members();
    if members.is_empty() {
        out.push("retrievability: network has no members".to_string());
        return;
    }
    for (i, (id, item)) in oracle.items().enumerate() {
        let access = members[(i + rotation) % members.len()];
        match net.retrieve(id, access) {
            Ok(res) => {
                if res.payload != item.payload {
                    out.push(format!(
                        "retrievability: {id:?} from {access} returned the wrong payload"
                    ));
                }
                if res.server != item.loc {
                    out.push(format!(
                        "retrievability: {id:?} served by {} but oracle places it on {}",
                        res.server, item.loc
                    ));
                }
            }
            Err(e) => out.push(format!(
                "retrievability: {id:?} from {access} failed: {e} (oracle holds it on {})",
                item.loc
            )),
        }
    }
    for (i, id) in oracle.tombstones().enumerate() {
        let access = members[(i + rotation) % members.len()];
        match net.retrieve(id, access) {
            Err(GredError::NotFound) => {}
            Ok(res) => out.push(format!(
                "retrievability: tombstoned {id:?} still served by {}",
                res.server
            )),
            Err(e) => out.push(format!(
                "retrievability: tombstoned {id:?} lookup failed oddly: {e}"
            )),
        }
    }
}

/// Invariant 4: forwarding state never references departed switches, each
/// member's neighbor entries mirror the controller's DT exactly, and the
/// network's own self-audit is clean.
fn check_table_hygiene(net: &GredNetwork, oracle: &Oracle, out: &mut Vec<String>) {
    // Oracle and controller agree on the world before we compare the
    // switches against it.
    if oracle.member_ids() != net.members() {
        out.push(format!(
            "hygiene: oracle members {:?} != network members {:?}",
            oracle.member_ids(),
            net.members()
        ));
    }
    for &m in net.members() {
        let Some(member) = oracle.member(m) else {
            continue; // already reported above
        };
        if Some(member.position) != net.position_of_switch(m) {
            out.push(format!("hygiene: switch {m} position drifted from oracle"));
        }
        if member.servers != net.pool().servers_at(m) {
            out.push(format!(
                "hygiene: switch {m} server count drifted from oracle"
            ));
        }
    }
    if oracle.extensions() != net.active_extensions() {
        out.push(format!(
            "hygiene: oracle extensions {:?} != network extensions {:?}",
            oracle.extensions(),
            net.active_extensions()
        ));
    }

    // Per-switch tables: no entry may name a non-member, and each member
    // plane's DT adjacency must match the controller's triangulation.
    for s in 0..net.topology().switch_count() {
        let plane = &net.dataplanes()[s];
        for entry in plane.neighbor_entries() {
            if !net.is_member(entry.neighbor) {
                out.push(format!(
                    "hygiene: switch {s} has a neighbor entry for departed switch {}",
                    entry.neighbor
                ));
            }
        }
        for tuple in plane.relay_entries() {
            if !net.is_member(tuple.dest) || !net.is_member(tuple.sour) {
                out.push(format!(
                    "hygiene: switch {s} relays {}->{} involving a departed switch",
                    tuple.sour, tuple.dest
                ));
            }
        }
    }
    for &m in net.members() {
        let mut installed: Vec<usize> = net.dataplanes()[m]
            .neighbor_entries()
            .map(|e| e.neighbor)
            .collect();
        installed.sort_unstable();
        // The controller installs DT neighbors plus physical member
        // neighbors (Algorithm 2 greedily considers both).
        let mut expected = net.dt().neighbors_of(m);
        for v in net.topology().neighbors(m) {
            if net.is_member(v) {
                expected.push(v);
            }
        }
        expected.sort_unstable();
        expected.dedup();
        if installed != expected {
            out.push(format!(
                "hygiene: switch {m} neighbor entries {installed:?} != DT ∪ physical members {expected:?}"
            ));
        }
        for entry in net.dataplanes()[m].neighbor_entries() {
            if Some(entry.position) != net.position_of_switch(entry.neighbor) {
                out.push(format!(
                    "hygiene: switch {m} caches a stale position for neighbor {}",
                    entry.neighbor
                ));
            }
        }
    }
    for (original, takeover) in net.active_extensions() {
        if !net.server_exists(original) || !net.server_exists(takeover) {
            out.push(format!(
                "hygiene: extension {original}->{takeover} references a missing server"
            ));
        }
    }
    for problem in net.verify_invariants() {
        out.push(format!("hygiene: self-audit: {problem}"));
    }
}
