//! Deterministic operation schedules.
//!
//! A schedule is a pure function of `(seed, length)`: the same pair always
//! yields the same [`Op`] sequence, so a failure report containing only
//! those two numbers reproduces the entire run. Operations carry abstract
//! `u32` picks rather than concrete switch/server ids — the harness
//! resolves each pick against the live network state at execution time, so
//! a schedule stays meaningful (and a shrunk schedule stays executable) as
//! membership changes.

use rand::{rngs::StdRng, Rng, SeedableRng};

/// Domain-mixing constant so the schedule stream differs from any other
/// consumer of the same seed (e.g. the topology generator).
const SCHEDULE_DOMAIN: u64 = 0x5EED_5C4E_D01E_0001;

/// One step of a model-based run. `pick`/`key` values are abstract and
/// resolved against live state by the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Place one item under a key drawn from a small shared key space.
    Place {
        /// Abstract key selector.
        key: u32,
    },
    /// Retrieve either an existing item (usually) or a missing one.
    Retrieve {
        /// Abstract item selector.
        pick: u32,
    },
    /// Place `copies` replicas of one key.
    PlaceReplicated {
        /// Abstract key selector.
        key: u32,
        /// Number of replicas (≥ 2).
        copies: u32,
    },
    /// Extend the management range of some server.
    ExtendRange {
        /// Abstract server selector.
        pick: u32,
    },
    /// Retract an active extension (usually) or probe an un-extended
    /// server for the expected error.
    RetractExtension {
        /// Abstract extension/server selector.
        pick: u32,
    },
    /// A new switch joins, linked to up to two existing members.
    SwitchJoin {
        /// Abstract link selector.
        pick: u32,
        /// Servers behind the new switch (≥ 1).
        servers: u32,
    },
    /// A member switch leaves gracefully (its data migrates).
    SwitchLeave {
        /// Abstract victim selector.
        pick: u32,
    },
    /// A member switch crashes (its data is lost before the controller
    /// reacts).
    SwitchFail {
        /// Abstract victim selector.
        pick: u32,
    },
}

/// Generates the schedule for `(seed, len)`. Deterministic: equal inputs
/// give equal output on every platform.
pub fn generate(seed: u64, len: usize) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed ^ SCHEDULE_DOMAIN);
    (0..len)
        .map(|_| {
            let roll = rng.gen_range(0u32..100);
            let pick = rng.gen_range(0u32..1_000_000);
            match roll {
                0..=21 => Op::Place { key: pick },
                22..=39 => Op::Retrieve { pick },
                40..=47 => Op::PlaceReplicated {
                    key: pick,
                    copies: rng.gen_range(2u32..=3),
                },
                48..=59 => Op::ExtendRange { pick },
                60..=69 => Op::RetractExtension { pick },
                70..=79 => Op::SwitchJoin {
                    pick,
                    servers: rng.gen_range(1u32..=2),
                },
                80..=89 => Op::SwitchLeave { pick },
                _ => Op::SwitchFail { pick },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        assert_eq!(generate(42, 500), generate(42, 500));
        assert_ne!(generate(42, 500), generate(43, 500));
    }

    #[test]
    fn longer_schedule_extends_shorter() {
        // The per-op draw count is fixed, so a longer schedule from the
        // same seed is an extension of the shorter one — truncation for
        // shrinking preserves the prefix.
        let short = generate(7, 100);
        let long = generate(7, 250);
        assert_eq!(&long[..100], &short[..]);
    }

    #[test]
    fn all_variants_appear() {
        let ops = generate(1, 2000);
        let mut seen = [false; 8];
        for op in ops {
            let idx = match op {
                Op::Place { .. } => 0,
                Op::Retrieve { .. } => 1,
                Op::PlaceReplicated { .. } => 2,
                Op::ExtendRange { .. } => 3,
                Op::RetractExtension { .. } => 4,
                Op::SwitchJoin { .. } => 5,
                Op::SwitchLeave { .. } => 6,
                Op::SwitchFail { .. } => 7,
            };
            seen[idx] = true;
        }
        assert!(seen.iter().all(|&s| s), "seen: {seen:?}");
    }

    #[test]
    fn replica_counts_in_range() {
        for op in generate(3, 2000) {
            if let Op::PlaceReplicated { copies, .. } = op {
                assert!((2..=3).contains(&copies));
            }
            if let Op::SwitchJoin { servers, .. } = op {
                assert!((1..=2).contains(&servers));
            }
        }
    }
}
