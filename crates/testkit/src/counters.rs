//! Counter-asserted invariants over scraped [`StatsSnapshot`]s.
//!
//! Chaos and observability tests used to establish properties like
//! "detours stopped" or "the cache absorbed the crowd" by grepping node
//! logs — fragile, and blind to anything a log line didn't mention. With
//! the stats plane every node exports its full counter block over the
//! wire, so the same properties become *delta assertions*: scrape before,
//! run the scenario, scrape after, and assert exactly which counters
//! moved and by how much.
//!
//! [`CounterWindow`] packages the pattern. It pins the *before* scrape
//! and answers delta queries against an *after* scrape, summed
//! cluster-wide or broken out per node. Counters are monotonic, so a
//! negative delta (or a node present before but missing after, without
//! an intervening crash) is itself a bug — the window panics loudly
//! rather than returning a wrapped number.

use gred_dataplane::StatsSnapshot;

/// A before/after pair of cluster scrapes, queried for counter deltas.
///
/// ```
/// use gred_dataplane::StatsSnapshot;
/// use gred_testkit::CounterWindow;
///
/// let mut before = StatsSnapshot::default();
/// before.switch = 3;
/// let mut after = before.clone();
/// after.hot.cache_hits += 40;
///
/// let window = CounterWindow::open(vec![before]);
/// assert_eq!(window.delta(&[after.clone()], |s| s.hot.cache_hits), 40);
/// assert_eq!(window.delta(&[after], |s| s.hot.cache_misses), 0);
/// ```
#[derive(Debug, Clone)]
pub struct CounterWindow {
    before: Vec<StatsSnapshot>,
}

impl CounterWindow {
    /// Pins the baseline scrape the deltas are measured from.
    pub fn open(before: Vec<StatsSnapshot>) -> CounterWindow {
        CounterWindow { before }
    }

    /// The pinned baseline, for assertions about the starting state.
    pub fn baseline(&self) -> &[StatsSnapshot] {
        &self.before
    }

    /// Cluster-wide delta of one counter: `counter` summed over `after`
    /// minus the same sum over the baseline.
    ///
    /// Panics if the counter *regressed* — monotonic counters never go
    /// down on a live cluster, so a negative delta means the scrape hit
    /// a restarted node or the counter is broken.
    pub fn delta(
        &self,
        after: &[StatsSnapshot],
        counter: impl Fn(&StatsSnapshot) -> u64,
    ) -> u64 {
        let start: u64 = self.before.iter().map(&counter).sum();
        let end: u64 = after.iter().map(&counter).sum();
        assert!(
            end >= start,
            "counter regressed across the window: {start} -> {end} \
             (a monotonic counter went down — restarted node, or broken counter)"
        );
        end - start
    }

    /// Per-node deltas of one counter, keyed by switch id and sorted.
    ///
    /// Nodes that appear on only one side of the window (booted or
    /// crashed mid-scenario) are reported with the present side's value
    /// against an implicit zero — joins show their whole count, and a
    /// crashed node's counter vanishing panics via the regression check.
    pub fn per_node_delta(
        &self,
        after: &[StatsSnapshot],
        counter: impl Fn(&StatsSnapshot) -> u64,
    ) -> Vec<(u32, u64)> {
        let mut deltas: Vec<(u32, u64)> = after
            .iter()
            .map(|snap| {
                let start = self
                    .before
                    .iter()
                    .find(|b| b.switch == snap.switch)
                    .map(&counter)
                    .unwrap_or(0);
                let end = counter(snap);
                assert!(
                    end >= start,
                    "node {}: counter regressed across the window: {start} -> {end}",
                    snap.switch
                );
                (snap.switch, end - start)
            })
            .collect();
        deltas.sort_unstable_by_key(|&(switch, _)| switch);
        deltas
    }

    /// Asserts that a counter did not move anywhere in the cluster —
    /// the workhorse for "X must have stopped" invariants (detours
    /// after a heal, misses against a warm cache, dispatch spawns
    /// during a scrape storm).
    ///
    /// Panics with `what` and the offending per-node deltas otherwise.
    pub fn assert_flat(
        &self,
        after: &[StatsSnapshot],
        counter: impl Fn(&StatsSnapshot) -> u64,
        what: &str,
    ) {
        let moved: Vec<(u32, u64)> = self
            .per_node_delta(after, counter)
            .into_iter()
            .filter(|&(_, delta)| delta > 0)
            .collect();
        assert!(
            moved.is_empty(),
            "{what}: counter moved on nodes {moved:?} but must stay flat"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(switch: u32, hits: u64, detours: u64) -> StatsSnapshot {
        let mut snap = StatsSnapshot::default();
        snap.switch = switch;
        snap.hot.cache_hits = hits;
        snap.hot.detour_forwards = detours;
        snap
    }

    #[test]
    fn sums_deltas_cluster_wide_and_per_node() {
        let window = CounterWindow::open(vec![snap(0, 10, 1), snap(1, 5, 0)]);
        let after = vec![snap(0, 17, 1), snap(1, 8, 0)];
        assert_eq!(window.delta(&after, |s| s.hot.cache_hits), 10);
        assert_eq!(
            window.per_node_delta(&after, |s| s.hot.cache_hits),
            vec![(0, 7), (1, 3)]
        );
        window.assert_flat(&after, |s| s.hot.detour_forwards, "post-heal detours");
    }

    #[test]
    fn joined_nodes_count_from_zero() {
        let window = CounterWindow::open(vec![snap(0, 10, 0)]);
        let after = vec![snap(0, 10, 0), snap(7, 4, 0)];
        assert_eq!(
            window.per_node_delta(&after, |s| s.hot.cache_hits),
            vec![(0, 0), (7, 4)]
        );
    }

    #[test]
    #[should_panic(expected = "must stay flat")]
    fn flat_assertion_names_the_moving_node() {
        let window = CounterWindow::open(vec![snap(0, 0, 2)]);
        window.assert_flat(
            &[snap(0, 0, 5)],
            |s| s.hot.detour_forwards,
            "post-heal detours",
        );
    }

    #[test]
    #[should_panic(expected = "regressed")]
    fn counter_regression_is_loud() {
        let window = CounterWindow::open(vec![snap(0, 10, 0)]);
        window.delta(&[snap(0, 3, 0)], |s| s.hot.cache_hits);
    }
}
