//! Offline shim for the `bytes` crate: an immutable, cheaply-cloneable
//! byte buffer backed by `Arc<[u8]>`, covering the API surface this
//! workspace uses (`new`, `from_static`, `copy_from_slice`, `From`
//! conversions, deref to `[u8]`).

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted contiguous byte buffer.
///
/// Clones share the underlying allocation, so payloads can be handed
/// between stores and packets without copying.
#[derive(Clone, Default)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Wraps a static byte slice (copied here; the real crate borrows,
    /// which callers cannot observe through the shared API).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(Arc::from(bytes))
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(Arc::from(v))
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Self {
        Bytes(Arc::from(&v[..]))
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes(Arc::from(v.into_bytes()))
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes(Arc::from(v.as_bytes()))
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &*self.0 == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &*self.0 == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        &*self.0 == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes(iter.into_iter().collect::<Vec<u8>>().into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        assert_eq!(Bytes::new().len(), 0);
        assert!(Bytes::new().is_empty());
        let a = Bytes::from_static(b"abc");
        let b = Bytes::copy_from_slice(b"abc");
        assert_eq!(a, b);
        assert_eq!(a.as_ref(), b"abc");
        assert_eq!(a, *b"abc");
    }

    #[test]
    fn clones_share_contents() {
        let a: Bytes = vec![1u8, 2, 3].into();
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn from_conversions() {
        assert_eq!(Bytes::from("hi").as_ref(), b"hi");
        assert_eq!(Bytes::from(String::from("hi")).as_ref(), b"hi");
        assert_eq!(Bytes::from(b"hi".as_ref()).as_ref(), b"hi");
    }

    #[test]
    fn debug_escapes() {
        assert_eq!(format!("{:?}", Bytes::from_static(b"a\n")), "b\"a\\n\"");
    }
}
