//! Offline shim for the `bytes` crate: an immutable, cheaply-cloneable
//! byte buffer backed by `Arc<[u8]>`, covering the API surface this
//! workspace uses (`new`, `from_static`, `copy_from_slice`, `slice`,
//! `From` conversions, deref to `[u8]`).

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted contiguous byte buffer.
///
/// Clones share the underlying allocation, so payloads can be handed
/// between stores and packets without copying. [`Bytes::slice`] returns
/// a *view* into the same allocation, which is what makes the cluster's
/// zero-copy hot path possible: a decoded frame body is sliced into the
/// packet payload without a second copy.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
            start: 0,
            end: 0,
        }
    }

    /// Wraps a static byte slice (copied here; the real crate borrows,
    /// which callers cannot observe through the shared API).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from_arc(Arc::from(bytes))
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from_arc(Arc::from(data))
    }

    fn from_arc(data: Arc<[u8]>) -> Self {
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// A sub-view sharing this buffer's allocation — no copy.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted, matching the
    /// real crate's behavior.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            begin <= end && end <= len,
            "slice {begin}..{end} out of bounds for {len}-byte buffer"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_arc(Arc::from(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from_arc(Arc::from(v))
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Self {
        Bytes::from_arc(Arc::from(&v[..]))
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from_arc(Arc::from(v.into_bytes()))
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::from_arc(Arc::from(v.as_bytes()))
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from_arc(iter.into_iter().collect::<Vec<u8>>().into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        assert_eq!(Bytes::new().len(), 0);
        assert!(Bytes::new().is_empty());
        let a = Bytes::from_static(b"abc");
        let b = Bytes::copy_from_slice(b"abc");
        assert_eq!(a, b);
        assert_eq!(a.as_ref(), b"abc");
        assert_eq!(a, *b"abc");
    }

    #[test]
    fn clones_share_contents() {
        let a: Bytes = vec![1u8, 2, 3].into();
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn from_conversions() {
        assert_eq!(Bytes::from("hi").as_ref(), b"hi");
        assert_eq!(Bytes::from(String::from("hi")).as_ref(), b"hi");
        assert_eq!(Bytes::from(b"hi".as_ref()).as_ref(), b"hi");
    }

    #[test]
    fn debug_escapes() {
        assert_eq!(format!("{:?}", Bytes::from_static(b"a\n")), "b\"a\\n\"");
    }

    #[test]
    fn slice_is_a_zero_copy_view() {
        let whole: Bytes = b"header|payload".as_ref().into();
        let payload = whole.slice(7..);
        assert_eq!(payload.as_ref(), b"payload");
        // The view shares the allocation (strong count observes both).
        assert_eq!(Arc::strong_count(&whole.data), 2);
        let of_view = payload.slice(0..3);
        assert_eq!(of_view.as_ref(), b"pay");
        assert_eq!(Arc::strong_count(&whole.data), 3);
    }

    #[test]
    fn slice_bounds_forms() {
        let b: Bytes = b"abcdef".as_ref().into();
        assert_eq!(b.slice(..).as_ref(), b"abcdef");
        assert_eq!(b.slice(2..4).as_ref(), b"cd");
        assert_eq!(b.slice(..=2).as_ref(), b"abc");
        assert_eq!(b.slice(6..).len(), 0);
        assert!(b.slice(3..3).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_past_end_panics() {
        let b: Bytes = b"ab".as_ref().into();
        let _ = b.slice(1..5);
    }

    #[test]
    fn hash_and_ord_respect_views() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let direct: Bytes = b"cd".as_ref().into();
        let view = Bytes::from(b"abcdef".as_ref()).slice(2..4);
        assert_eq!(direct, view);
        assert_eq!(direct.cmp(&view), std::cmp::Ordering::Equal);
        let mut h1 = DefaultHasher::new();
        let mut h2 = DefaultHasher::new();
        direct.hash(&mut h1);
        view.hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }
}
