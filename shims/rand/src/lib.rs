//! Offline shim for the `rand` crate covering the API surface this
//! workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen_range, gen_bool, gen}`, and `seq::SliceRandom::{shuffle,
//! choose}`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a
//! high-quality, deterministic stream (not the upstream crate's ChaCha12
//! stream, so absolute sequences differ from real `rand`; everything in
//! this repository only relies on determinism for a fixed seed, which
//! holds).

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32);
        self.start + (self.end - self.start) * unit
    }
}

/// Values producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// High-level sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        f64::standard(self) < p
    }

    /// A uniformly distributed value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Named generator types.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the small generator is the same engine in this shim.
    pub type SmallRng = StdRng;
}

pub mod seq {
    //! Slice sampling helpers.

    use super::Rng;

    /// Random order / choice operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// One uniformly random element (`None` when empty).
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0..1.0), b.gen_range(0.0..1.0));
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen_range(0u64..u64::MAX), c.gen_range(0u64..u64::MAX));
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(3usize..20);
            assert!((3..20).contains(&i));
            let j = rng.gen_range(1i32..=5);
            assert!((1..=5).contains(&j));
            let n = rng.gen_range(-5.0..5.0);
            assert!((-5.0..5.0).contains(&n));
        }
    }

    #[test]
    fn uniformish_distribution() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut buckets = [0usize; 10];
        for _ in 0..100_000 {
            buckets[rng.gen_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "bucket {b} far from uniform");
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits));
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
