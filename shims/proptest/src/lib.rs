//! Offline shim for `proptest`: a minimal property-testing harness
//! covering the API surface this workspace uses.
//!
//! Differences from the real crate, by design:
//!
//! - no shrinking — a failing case panics with the generated inputs via
//!   the normal assertion message;
//! - `prop_assume!` skips forward rather than resampling;
//! - regex string strategies support the `[class]{m,n}` subset the
//!   repository's tests use;
//! - each test's generator is seeded from the test's module path, so
//!   runs are deterministic.

use std::marker::PhantomData;

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// A generator seeded from a test's fully-qualified name.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(h)
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below: bound must be positive");
        self.next_u64() % bound
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Run configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running exactly `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "strategy: empty range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "strategy: empty range");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// A strategy always producing a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, broadly ranged values; tests needing edge cases build
        // them explicitly.
        (rng.unit_f64() - 0.5) * 2e9
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        char::from_u32(32 + (rng.next_u64() % 95) as u32).expect("printable ASCII")
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Uniform choice between boxed alternatives — built by [`prop_oneof!`].
pub struct OneOf<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V: 'static> OneOf<V> {
    /// A single-arm choice; extend it with [`OneOf::or`].
    pub fn new<S: Strategy<Value = V> + 'static>(strategy: S) -> Self {
        OneOf {
            arms: vec![Box::new(strategy)],
        }
    }

    /// Adds an equally-weighted alternative.
    pub fn or<S: Strategy<Value = V> + 'static>(mut self, strategy: S) -> Self {
        self.arms.push(Box::new(strategy));
        self
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let k = rng.below(self.arms.len() as u64) as usize;
        self.arms[k].generate(rng)
    }
}

/// String strategies from a regex subset: concatenations of literal
/// characters and `[class]` atoms, each optionally quantified by `{m}`
/// or `{m,n}`.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        pattern::sample(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        pattern::sample(self, rng)
    }
}

mod pattern {
    use super::TestRng;

    enum Atom {
        Literal(char),
        Class(Vec<char>),
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
        let mut set = Vec::new();
        let mut prev: Option<char> = None;
        loop {
            let c = chars.next().expect("pattern: unterminated [class]");
            match c {
                ']' => break,
                '-' if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                    let hi = chars.next().expect("pattern: dangling range");
                    let lo = prev.take().expect("range start");
                    for v in (lo as u32 + 1)..=(hi as u32) {
                        set.push(char::from_u32(v).expect("pattern: bad range"));
                    }
                }
                '\\' => {
                    let esc = chars.next().expect("pattern: dangling escape");
                    set.push(esc);
                    prev = Some(esc);
                }
                _ => {
                    set.push(c);
                    prev = Some(c);
                }
            }
        }
        assert!(!set.is_empty(), "pattern: empty [class]");
        set
    }

    fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
        if chars.peek() != Some(&'{') {
            return (1, 1);
        }
        chars.next();
        let mut body = String::new();
        for c in chars.by_ref() {
            if c == '}' {
                break;
            }
            body.push(c);
        }
        match body.split_once(',') {
            Some((m, n)) => (
                m.trim().parse().expect("pattern: bad {m,n}"),
                n.trim().parse().expect("pattern: bad {m,n}"),
            ),
            None => {
                let m = body.trim().parse().expect("pattern: bad {m}");
                (m, m)
            }
        }
    }

    pub fn sample(pattern: &str, rng: &mut TestRng) -> String {
        let mut chars = pattern.chars().peekable();
        let mut out = String::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => Atom::Class(parse_class(&mut chars)),
                '\\' => Atom::Literal(chars.next().expect("pattern: dangling escape")),
                _ => Atom::Literal(c),
            };
            let (lo, hi) = parse_quantifier(&mut chars);
            let count = if hi > lo {
                lo + rng.below((hi - lo + 1) as u64) as usize
            } else {
                lo
            };
            for _ in 0..count {
                match &atom {
                    Atom::Literal(l) => out.push(*l),
                    Atom::Class(set) => out.push(set[rng.below(set.len() as u64) as usize]),
                }
            }
        }
        out
    }
}

/// Collection-size specifications accepted by [`collection`] strategies.
pub trait SizeRange {
    /// Draws a size.
    fn sample_size(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn sample_size(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for std::ops::Range<usize> {
    fn sample_size(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "size range empty");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl SizeRange for std::ops::RangeInclusive<usize> {
    fn sample_size(&self, rng: &mut TestRng) -> usize {
        *self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
    }
}

pub mod collection {
    //! Vec and HashSet strategies.

    use super::{SizeRange, Strategy, TestRng};
    use std::collections::HashSet;
    use std::hash::Hash;

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample_size(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` of values from `element`, sized by `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// The strategy returned by [`hash_set`].
    pub struct HashSetStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S, R> Strategy for HashSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Eq + Hash,
        R: SizeRange,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let n = self.size.sample_size(rng);
            let mut out = HashSet::with_capacity(n);
            // Bounded retries: duplicate draws don't grow the set.
            for _ in 0..(16 * n + 64) {
                if out.len() >= n {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }

    /// A `HashSet` of distinct values from `element`, sized by `size`
    /// (best effort when the element domain is small).
    pub fn hash_set<S, R>(element: S, size: R) -> HashSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Eq + Hash,
        R: SizeRange,
    {
        HashSetStrategy { element, size }
    }
}

pub mod option {
    //! Option strategies.

    use super::{Strategy, TestRng};

    /// The strategy returned by [`of`].
    pub struct OfStrategy<S>(S);

    impl<S: Strategy> Strategy for OfStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 1 {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }

    /// `Some` of `element` about half the time, `None` otherwise.
    pub fn of<S: Strategy>(element: S) -> OfStrategy<S> {
        OfStrategy(element)
    }
}

pub mod sample {
    //! Index sampling.

    use super::{Arbitrary, TestRng};

    /// An abstract index into a collection whose length is only known at
    /// use time — `any::<Index>()` then `idx.index(len)`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub struct Index(u64);

    impl Index {
        /// Resolves the abstract index against a collection of `len`
        /// elements.
        ///
        /// # Panics
        ///
        /// Panics when `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

pub mod shrink {
    //! Greedy counterexample minimization.
    //!
    //! The real crate shrinks through strategy-specific simplification
    //! trees; this shim exposes the one primitive the workspace's
    //! model-based harness needs — drop-one-element minimization of a
    //! failing sequence.

    /// Greedily minimizes `seq` while `still_fails` holds: repeatedly try
    /// removing one element and keep the removal whenever the shorter
    /// sequence still fails. The result is 1-minimal — removing any single
    /// remaining element makes the failure disappear.
    ///
    /// `still_fails` must be deterministic; it is called O(n²) times in
    /// the worst case.
    pub fn minimize_sequence<T: Clone>(
        seq: &[T],
        mut still_fails: impl FnMut(&[T]) -> bool,
    ) -> Vec<T> {
        let mut cur = seq.to_vec();
        let mut i = 0;
        while i < cur.len() {
            let mut candidate = cur.clone();
            candidate.remove(i);
            if still_fails(&candidate) {
                cur = candidate;
            } else {
                i += 1;
            }
        }
        cur
    }
}

/// Mirror of the real crate's `prop` facade module.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::sample;
}

pub mod prelude {
    //! Everything a `proptest!` block needs in scope.

    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Asserts a condition inside a property (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current case when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($first:expr $(, $rest:expr)* $(,)?) => {
        $crate::OneOf::new($first)$(.or($rest))*
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                let _ = __case;
                $(let $pat = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                { $body }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::for_test("shim::ranges");
        for _ in 0..1000 {
            let v = (0usize..10, -5.0f64..5.0, 1u8..=3).generate(&mut rng);
            assert!(v.0 < 10);
            assert!((-5.0..5.0).contains(&v.1));
            assert!((1..=3).contains(&v.2));
        }
    }

    #[test]
    fn string_pattern_subset() {
        let mut rng = TestRng::for_test("shim::pattern");
        for _ in 0..500 {
            let s = "[a-z0-9/]{4,20}".generate(&mut rng);
            assert!((4..=20).contains(&s.len()), "{s}");
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '/'));
        }
        let lit = "ab[01]{2}z".generate(&mut rng);
        assert_eq!(lit.len(), 5);
        assert!(lit.starts_with("ab") && lit.ends_with('z'));
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = TestRng::for_test("shim::collections");
        for _ in 0..200 {
            let v = crate::collection::vec(0u8..255, 3..7).generate(&mut rng);
            assert!((3..7).contains(&v.len()));
            let exact = crate::collection::vec(-1.0f64..1.0, 6usize).generate(&mut rng);
            assert_eq!(exact.len(), 6);
            let s = crate::collection::hash_set((0u32..1000, 0u32..1000), 3..40).generate(&mut rng);
            assert!(s.len() >= 3);
        }
    }

    #[test]
    fn oneof_and_option() {
        let mut rng = TestRng::for_test("shim::oneof");
        let s = prop_oneof![Just(0usize), Just(10), Just(30)];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(s.generate(&mut rng));
        }
        assert_eq!(seen, [0usize, 10, 30].into_iter().collect());
        let o = crate::option::of(0u8..10);
        let somes = (0..1000).filter(|_| o.generate(&mut rng).is_some()).count();
        assert!((300..700).contains(&somes));
    }

    #[test]
    fn minimize_sequence_drops_irrelevant_elements() {
        let seq: Vec<u32> = (0..20).collect();
        // The "bug" needs both 3 and 7 present to reproduce.
        let shrunk = crate::shrink::minimize_sequence(&seq, |s| s.contains(&3) && s.contains(&7));
        assert_eq!(shrunk, vec![3, 7]);
        // A predicate nothing satisfies shrinks to empty.
        let gone = crate::shrink::minimize_sequence(&seq, |_| true);
        assert!(gone.is_empty());
        // A predicate needing everything keeps everything.
        let all = crate::shrink::minimize_sequence(&seq, |s| s.len() == 20);
        assert_eq!(all, seq);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: patterns, assume, and assertions all wire up.
        #[test]
        fn macro_end_to_end(
            (a, b) in (0u64..100, 0u64..100),
            v in crate::collection::vec(any::<u8>(), 0..8),
        ) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
            prop_assert!(v.len() < 8);
            prop_assert_eq!(a + b, b + a);
        }
    }
}
