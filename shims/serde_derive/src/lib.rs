//! Offline shim for `serde_derive`: the `Serialize` / `Deserialize`
//! derives expand to nothing. The repo derives these traits on many
//! public types for downstream compatibility but never serializes
//! through serde itself (reports are rendered as CSV/JSON by hand), so
//! empty expansions are sufficient and keep the build hermetic.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
