//! Offline shim for `criterion`: a lightweight benchmark harness with
//! the same surface API (`Criterion`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `Throughput`, `BenchmarkId`,
//! `criterion_group!`, `criterion_main!`).
//!
//! Instead of criterion's statistical machinery, each benchmark is
//! warmed up once, then timed over `samples` batches whose iteration
//! count is sized so a batch takes roughly a millisecond. The median
//! batch mean is reported.
//!
//! Results are printed human-readably and appended as JSON lines to
//! `target/criterion-shim/results.jsonl` (override the directory with
//! `CRITERION_SHIM_DIR`), so scripts can post-process measurements.
//!
//! Environment knobs:
//! - `CRITERION_SHIM_SAMPLES`: batches per benchmark (default 10)
//! - `CRITERION_SHIM_DIR`: output directory for `results.jsonl`
//! - `CRITERION_SHIM_MAX_SECONDS`: per-benchmark timing budget; sampling
//!   stops early once the timed batches have consumed it (smoke runs)
//! - `CRITERION_SHIM_FILTER`: substring of `group/bench`; non-matching
//!   benchmarks are skipped entirely (their closures never run), so one
//!   variant can be profiled without the rest of the suite
//!
//! Each JSON record carries, besides the median per-iteration `mean_ns`,
//! the aggregate `total_ns`/`total_iters` over every timed batch — the
//! numbers a post-processor needs to compute an honest wall-clock rate
//! (`total_iters / total_ns`), which the median of batch means is not.

use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Work-per-iteration annotation, echoed into the JSON record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark's name, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter, under the group's name.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            id: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled in by [`Bencher::iter`].
    mean_ns: f64,
    /// Wall-clock nanoseconds spent inside timed batches.
    total_ns: u128,
    /// Iterations executed inside timed batches.
    total_iters: u64,
}

impl Bencher {
    fn empty() -> Bencher {
        Bencher {
            mean_ns: 0.0,
            total_ns: 0,
            total_iters: 0,
        }
    }

    /// Times `routine`, storing the median-of-batch-means estimate plus
    /// the aggregate wall-clock totals over all timed batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let samples: usize = std::env::var("CRITERION_SHIM_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(10);
        let budget: Option<Duration> = std::env::var("CRITERION_SHIM_MAX_SECONDS")
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|s| *s > 0.0)
            .map(Duration::from_secs_f64);

        // Warmup & calibration: one run to size the batches.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));

        // Aim for ~2ms batches, capped so slow benchmarks still finish.
        let iters_per_batch =
            (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 100_000) as usize;

        let mut batch_means = Vec::with_capacity(samples);
        let mut total = Duration::ZERO;
        let mut total_iters = 0u64;
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters_per_batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            batch_means.push(elapsed.as_nanos() as f64 / iters_per_batch as f64);
            total += elapsed;
            total_iters += iters_per_batch as u64;
            // At least one timed batch always lands, so a tiny budget
            // degrades to quick-but-measured rather than empty output.
            if budget.is_some_and(|b| total >= b) {
                break;
            }
        }
        batch_means.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.mean_ns = batch_means[batch_means.len() / 2];
        self.total_ns = total.as_nanos();
        self.total_iters = total_iters;
    }
}

/// Whether `group/bench` survives the `CRITERION_SHIM_FILTER` knob
/// (substring match; no filter means everything runs).
fn selected(group: &str, bench: &str) -> bool {
    match std::env::var("CRITERION_SHIM_FILTER") {
        Ok(filter) if !filter.is_empty() => format!("{group}/{bench}").contains(&filter),
        _ => true,
    }
}

fn shim_dir() -> PathBuf {
    std::env::var_os("CRITERION_SHIM_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/criterion-shim"))
}

fn append_result_line(line: &str) {
    let dir = shim_dir();
    if fs::create_dir_all(&dir).is_ok() {
        if let Ok(mut f) = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join("results.jsonl"))
        {
            let _ = writeln!(f, "{line}");
        }
    }
}

fn record(group: &str, bench: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let mean_ns = bencher.mean_ns;
    let human = format_ns(mean_ns);
    println!("bench: {group}/{bench}  {human}");

    let mut line = String::new();
    let _ = write!(
        line,
        "{{\"group\":\"{group}\",\"bench\":\"{bench}\",\"mean_ns\":{mean_ns:.1},\"total_ns\":{},\"total_iters\":{}",
        bencher.total_ns, bencher.total_iters
    );
    match throughput {
        Some(Throughput::Bytes(n)) => {
            let _ = write!(line, ",\"throughput_bytes\":{n}");
        }
        Some(Throughput::Elements(n)) => {
            let _ = write!(line, ",\"throughput_elements\":{n}");
        }
        None => {}
    }
    line.push('}');
    append_result_line(&line);
}

/// Appends a join-able companion record
/// (`{"group":…,"bench":…,"metrics":{…}}`) to the same `results.jsonl`
/// the timing records land in. Benchmarks use this for measurements a
/// timing loop cannot express — a cache hit rate observed over the
/// whole run, a counter read at shutdown — keyed by the same
/// group/bench id so post-processors (`scripts/bench_to_json.py`) can
/// join them onto the timing record. Non-finite values are skipped:
/// they have no JSON spelling.
pub fn record_metrics(group: &str, bench: &str, metrics: &[(&str, f64)]) {
    let mut line = String::new();
    let _ = write!(
        line,
        "{{\"group\":\"{group}\",\"bench\":\"{bench}\",\"metrics\":{{"
    );
    let mut first = true;
    for (key, value) in metrics {
        if !value.is_finite() {
            continue;
        }
        if !first {
            line.push(',');
        }
        first = false;
        let _ = write!(line, "\"{key}\":{value:.6}");
    }
    line.push_str("}}");
    append_result_line(&line);
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the shim sizes batches itself.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the shim sizes batches itself.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with work-per-iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F, I>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        if !selected(&self.name, &id.id) {
            return self;
        }
        let mut bencher = Bencher::empty();
        f(&mut bencher);
        record(&self.name, &id.id, &bencher, self.throughput);
        self
    }

    /// Runs one benchmark with a borrowed input value.
    pub fn bench_with_input<F, I, T: ?Sized>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &T),
    {
        let id = id.into();
        if !selected(&self.name, &id.id) {
            return self;
        }
        let mut bencher = Bencher::empty();
        f(&mut bencher, input);
        record(&self.name, &id.id, &bencher, self.throughput);
        self
    }

    /// Ends the group (no-op beyond symmetry with the real crate).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if !selected(name, name) {
            return self;
        }
        let mut bencher = Bencher::empty();
        f(&mut bencher);
        record(name, name, &bencher, None);
        self
    }

    /// Accepted for compatibility with `criterion_main!`.
    pub fn final_summary(&mut self) {}
}

/// Bundles benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_positive_time() {
        std::env::set_var("CRITERION_SHIM_SAMPLES", "3");
        let mut b = Bencher::empty();
        b.iter(|| black_box((0..100u64).sum::<u64>()));
        assert!(b.mean_ns > 0.0);
        assert!(b.total_ns > 0, "aggregate wall clock recorded");
        assert!(b.total_iters > 0, "aggregate iteration count recorded");
    }

    #[test]
    fn filter_selects_by_substring() {
        std::env::remove_var("CRITERION_SHIM_FILTER");
        assert!(selected("group", "bench"));
        std::env::set_var("CRITERION_SHIM_FILTER", "group/ben");
        assert!(selected("group", "bench"));
        assert!(!selected("group", "other"));
        std::env::set_var("CRITERION_SHIM_FILTER", "");
        assert!(selected("group", "other"));
        std::env::remove_var("CRITERION_SHIM_FILTER");
    }

    #[test]
    fn record_metrics_appends_joinable_json() {
        let dir = std::env::temp_dir().join(format!("criterion-shim-test-{}", std::process::id()));
        std::env::set_var("CRITERION_SHIM_DIR", &dir);
        record_metrics(
            "g",
            "16sw_1c_zipf_hotkey",
            &[("cache_hit_rate", 0.75), ("bogus", f64::NAN)],
        );
        std::env::remove_var("CRITERION_SHIM_DIR");
        let written = fs::read_to_string(dir.join("results.jsonl")).unwrap();
        let _ = fs::remove_dir_all(&dir);
        assert!(
            written.contains(
                "{\"group\":\"g\",\"bench\":\"16sw_1c_zipf_hotkey\",\
                 \"metrics\":{\"cache_hit_rate\":0.750000}}"
            ),
            "got {written}"
        );
        assert!(!written.contains("bogus"), "NaN metrics must be dropped");
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
        assert_eq!(BenchmarkId::from("plain").id, "plain");
    }

    #[test]
    fn format_ns_scales() {
        assert_eq!(format_ns(500.0), "500 ns");
        assert_eq!(format_ns(1_500.0), "1.50 µs");
        assert_eq!(format_ns(2_500_000.0), "2.50 ms");
        assert_eq!(format_ns(3_000_000_000.0), "3.000 s");
    }
}
