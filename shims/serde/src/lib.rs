//! Offline shim for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on public types as an
//! interface convention but performs no serde-based serialization (all
//! report output is hand-rendered CSV / tables). This shim provides the
//! two names as marker traits plus no-op derive macros so the derive
//! attribute positions keep compiling without network access.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
