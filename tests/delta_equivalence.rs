//! Decision equivalence of the incremental delta rebuild against the
//! sequential one-event-at-a-time dynamics path, under seeded churn.
//!
//! `GredNetwork::apply_delta` must produce a network that *behaves*
//! exactly like applying the same events through
//! `add_switch`/`remove_switch`: identical members, positions, DT
//! adjacency, data ownership, overlay routes, and physical path lengths.
//! Relay tables need not be bit-equal after leaves (removing a switch can
//! re-break BFS ties among equal-length paths), which is why the oracle
//! compares decisions, not tables; join-only batches *are* additionally
//! checked bit-for-bit in the core crate's unit tests.

use gred::{GredConfig, GredNetwork, TopologyChange};
use gred_hash::DataId;
use gred_net::{waxman_topology, ServerPool, WaxmanConfig};

/// Deterministic LCG, so churn schedules are reproducible.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn pick(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }
}

fn base_network(switches: usize, seed: u64) -> GredNetwork {
    let (topo, _) = waxman_topology(&WaxmanConfig::with_switches(switches, seed));
    let pool = ServerPool::uniform(switches, 2, u64::MAX);
    let mut net = GredNetwork::build(topo, pool, GredConfig::with_iterations(10).seeded(seed))
        .expect("base build");
    for i in 0..80 {
        net.place(
            &DataId::new(format!("churn-{seed}-{i}")),
            bytes::Bytes::new(),
            i % switches,
        )
        .expect("seed placement");
    }
    net
}

/// Draws a churn batch and keeps only events the sequential path accepts
/// (probing each event on a clone), so both paths see an all-valid batch.
fn valid_batch(net: &GredNetwork, rng: &mut Lcg, events: usize) -> Vec<TopologyChange> {
    let mut probe = net.clone();
    let mut batch = Vec::new();
    for _ in 0..events {
        let n = probe.topology().switch_count();
        let change = if rng.next().is_multiple_of(3) && probe.members().len() > 4 {
            let victim = probe.members()[rng.pick(probe.members().len())];
            TopologyChange::Leave { switch: victim }
        } else {
            let mut links = vec![rng.pick(n), rng.pick(n)];
            links.dedup();
            TopologyChange::Join {
                links,
                capacities: vec![u64::MAX; 1 + rng.pick(2)],
            }
        };
        let accepted = match &change {
            TopologyChange::Join { links, capacities } => {
                probe.add_switch(links, capacities.clone()).is_ok()
            }
            TopologyChange::Leave { switch } => probe.remove_switch(*switch).is_ok(),
        };
        if accepted {
            batch.push(change);
        }
    }
    batch
}

fn assert_decision_equivalent(seq: &GredNetwork, delta: &GredNetwork, tag: &str) {
    assert_eq!(seq.members(), delta.members(), "{tag}: members");
    for &m in seq.members() {
        assert_eq!(
            seq.position_of_switch(m),
            delta.position_of_switch(m),
            "{tag}: position of {m}"
        );
    }
    assert_eq!(seq.dt().edges(), delta.dt().edges(), "{tag}: DT edges");
    assert!(
        delta.verify_invariants().is_empty(),
        "{tag}: delta invariants: {:?}",
        delta.verify_invariants()
    );

    // Ownership and routing decisions agree for a spread of keys, from a
    // spread of access switches — overlay routes bit-equal, physical
    // path lengths equal (exact relay chains may legitimately differ).
    let seq_probe = seq.clone();
    let delta_probe = delta.clone();
    let accesses: Vec<usize> = seq.members().iter().copied().take(5).collect();
    for i in 0..60 {
        let id = DataId::new(format!("probe-{tag}-{i}"));
        assert_eq!(
            seq.responsible_server(&id),
            delta.responsible_server(&id),
            "{tag}: owner of key {i}"
        );
        let access = accesses[i % accesses.len()];
        let s = seq_probe.retrieve(&id, access);
        let d = delta_probe.retrieve(&id, access);
        match (s, d) {
            (Ok(s), Ok(d)) => {
                assert_eq!(s.server, d.server, "{tag}: key {i} server");
                assert_eq!(s.route.overlay, d.route.overlay, "{tag}: key {i} overlay");
                assert_eq!(
                    s.route.physical_hops(),
                    d.route.physical_hops(),
                    "{tag}: key {i} physical hops"
                );
            }
            (Err(_), Err(_)) => {} // both miss the same way (item absent)
            (s, d) => panic!("{tag}: key {i} diverged: seq={s:?} delta={d:?}"),
        }
    }

    // Stored state ended up in the same place.
    let mut seq_loads = seq.server_loads();
    let mut delta_loads = delta.server_loads();
    seq_loads.sort();
    delta_loads.sort();
    assert_eq!(seq_loads, delta_loads, "{tag}: server loads");
}

#[test]
fn seeded_churn_bursts_match_sequential_dynamics() {
    for seed in [11u64, 23, 47, 91] {
        let net = base_network(24, seed);
        let mut rng = Lcg(seed ^ 0x5DEECE66D);
        let batch = valid_batch(&net, &mut rng, 6);
        assert!(!batch.is_empty(), "seed {seed}: empty batch drawn");

        let mut delta = net.clone();
        let report = delta.apply_delta(&batch).expect("delta applies");
        assert_eq!(
            report.joined.len() + report.left.len(),
            batch.len(),
            "seed {seed}: every event accounted for"
        );

        let mut seq = net;
        for change in &batch {
            match change {
                TopologyChange::Join { links, capacities } => {
                    seq.add_switch(links, capacities.clone())
                        .expect("probed ok");
                }
                TopologyChange::Leave { switch } => {
                    seq.remove_switch(*switch).expect("probed ok");
                }
            }
        }
        assert_decision_equivalent(&seq, &delta, &format!("seed{seed}"));
    }
}

#[test]
fn repeated_delta_batches_stay_healthy() {
    // Several delta batches back to back — stale state from batch k must
    // not poison batch k+1.
    let mut net = base_network(20, 77);
    let mut rng = Lcg(0xFEED);
    for round in 0..4 {
        let batch = valid_batch(&net, &mut rng, 4);
        if batch.is_empty() {
            continue;
        }
        let report = net.apply_delta(&batch).expect("delta applies");
        assert!(
            report.affected.len() <= report.members_total,
            "round {round}: affected exceeds membership"
        );
        assert!(
            net.verify_invariants().is_empty(),
            "round {round}: {:?}",
            net.verify_invariants()
        );
    }
    // Everything placed at the start is still retrievable.
    let access = net.members()[0];
    for i in 0..80 {
        let id = DataId::new(format!("churn-77-{i}"));
        net.retrieve(&id, access)
            .unwrap_or_else(|e| panic!("key {i} lost after churn: {e:?}"));
    }
}

#[test]
fn delta_localizes_work_on_large_networks() {
    // The point of the delta path: one join in a 150-member network must
    // not touch most members' forwarding state.
    let (topo, _) = waxman_topology(&WaxmanConfig::with_switches(150, 13));
    let pool = ServerPool::uniform(150, 2, u64::MAX);
    let mut net = GredNetwork::build(
        topo,
        pool,
        GredConfig::with_iterations(5).seeded(13).landmarks(24),
    )
    .expect("landmark build");
    let report = net
        .apply_delta(&[TopologyChange::Join {
            links: vec![3, 70],
            capacities: vec![u64::MAX],
        }])
        .expect("delta applies");
    assert!(
        report.affected.len() < 30,
        "one join re-installed {} of {} members",
        report.affected.len(),
        report.members_total
    );
    assert!(report.reuse_ratio() > 0.8);
    assert!(net.verify_invariants().is_empty());
}
