//! GRED vs the Chord baseline on identical substrates: both must be
//! *correct* (every key resolves to exactly one owner, from any access
//! point); GRED must win on the paper's two metrics.

use gred_chord::{overlay_path_physical_hops, ChordConfig, ChordNetwork};
use gred_hash::DataId;
use gred_net::{waxman_topology, ServerPool, WaxmanConfig};
use gred_sim::experiments::substrate;
use gred_sim::{max_avg, ComparedSystem, SystemUnderTest};
use std::collections::HashMap;

#[test]
fn both_systems_resolve_keys_consistently() {
    let (topo, pool) = substrate(20, 5, 3, 42);
    let gred = SystemUnderTest::build(
        topo.clone(),
        pool.clone(),
        ComparedSystem::Gred { iterations: 20 },
        42,
    );
    let chord = ChordNetwork::build(&pool, ChordConfig::default());

    for i in 0..100 {
        let id = DataId::new(format!("parity/{i}"));
        // GRED: owner independent of access point (checked via routing in
        // the gred crate's own tests); here check the fast owner path.
        let g_owner = gred.owner_server(&id);
        assert!(g_owner.switch < 20 && g_owner.index < 5);
        // Chord: lookup from every access switch reaches the ring owner.
        let c_owner = chord.owner(&id);
        for access in (0..20).step_by(4) {
            let path = chord.lookup_path(access, &id);
            assert_eq!(*path.last().unwrap(), c_owner, "key {i} from {access}");
            assert!(
                overlay_path_physical_hops(&topo, &path).is_some(),
                "every overlay hop must be physically routable"
            );
        }
    }
}

#[test]
fn gred_beats_chord_on_both_paper_metrics() {
    let (topo, pool) = substrate(50, 10, 3, 7);
    let gred = SystemUnderTest::build(
        topo.clone(),
        pool.clone(),
        ComparedSystem::Gred { iterations: 50 },
        7,
    );
    let chord = SystemUnderTest::build(topo, pool, ComparedSystem::Chord { virtual_nodes: 1 }, 7);

    // Stretch over 100 random requests.
    let mut g_stretch = 0.0;
    let mut c_stretch = 0.0;
    for i in 0..100 {
        let id = DataId::new(format!("metric/{i}"));
        let access = (i * 13) % 50;
        g_stretch += gred.request_stretch(&id, access);
        c_stretch += chord.request_stretch(&id, access);
    }
    assert!(
        g_stretch * 2.0 < c_stretch,
        "paper claims <30% routing cost; got GRED {g_stretch:.1} vs Chord {c_stretch:.1}"
    );

    // Load over 30k items, all 500 servers in the denominator.
    let mut g_loads: HashMap<_, u64> = HashMap::new();
    let mut c_loads: HashMap<_, u64> = HashMap::new();
    for i in 0..30_000 {
        let id = DataId::new(format!("bal/{i}"));
        *g_loads.entry(gred.owner_server(&id)).or_default() += 1;
        *c_loads.entry(chord.owner_server(&id)).or_default() += 1;
    }
    let fill = |m: HashMap<gred_net::ServerId, u64>| {
        let mut v: Vec<u64> = m.into_values().collect();
        v.resize(500.max(v.len()), 0);
        v
    };
    let g = max_avg(&fill(g_loads));
    let c = max_avg(&fill(c_loads));
    assert!(g < c, "GRED max/avg {g:.2} must beat Chord {c:.2}");
    assert!(g < 2.5, "GRED(T=50) should be below 2.5, got {g:.2}");
}

#[test]
fn chord_virtual_nodes_narrow_but_do_not_close_the_gap() {
    let (topo, pool) = substrate(30, 10, 3, 9);
    let items = 20_000;
    let measure = |sys: ComparedSystem| {
        let sut = SystemUnderTest::build(topo.clone(), pool.clone(), sys, 9);
        let mut loads: HashMap<_, u64> = HashMap::new();
        for i in 0..items {
            *loads
                .entry(sut.owner_server(&DataId::new(format!("vn/{i}"))))
                .or_default() += 1;
        }
        let mut v: Vec<u64> = loads.into_values().collect();
        v.resize(300.max(v.len()), 0);
        max_avg(&v)
    };
    let chord1 = measure(ComparedSystem::Chord { virtual_nodes: 1 });
    let chord16 = measure(ComparedSystem::Chord { virtual_nodes: 16 });
    let gred = measure(ComparedSystem::Gred { iterations: 50 });
    assert!(chord16 < chord1, "virtual nodes help Chord");
    assert!(gred < chord16, "GRED still beats Chord-with-vnodes");
}

#[test]
fn identical_seeds_reproduce_identical_numbers() {
    let run = || {
        let (topo, _) = waxman_topology(&WaxmanConfig::with_switches(25, 3));
        let pool = ServerPool::uniform(25, 4, u64::MAX);
        let sut = SystemUnderTest::build(topo, pool, ComparedSystem::Gred { iterations: 25 }, 3);
        (0..50)
            .map(|i| sut.request_stretch(&DataId::new(format!("det/{i}")), i % 25))
            .sum::<f64>()
    };
    assert_eq!(run(), run(), "experiments must be bit-for-bit reproducible");
}

#[test]
fn experiments_are_thread_count_independent() {
    // The parallel sweep runner must not change results: identical rows
    // regardless of worker count (each x-axis point is independently
    // seeded).
    use gred_sim::experiments::stretch::stretch_vs_network_size;
    let rows = stretch_vs_network_size(&[15, 25, 35], 20, 77);
    let rows2 = stretch_vs_network_size(&[15, 25, 35], 20, 77);
    assert_eq!(rows.len(), rows2.len());
    for (a, b) in rows.iter().zip(&rows2) {
        assert_eq!(a.x, b.x);
        assert_eq!(a.system, b.system);
        assert_eq!(a.mean, b.mean);
        assert_eq!(a.ci90, b.ci90);
    }
}
