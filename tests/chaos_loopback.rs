//! Chaos acceptance tests: the loopback cluster must keep every
//! acknowledged write through seeded node kills and link faults.
//!
//! The contract under test, end to end:
//!
//! - writes ack only after a quorum of clean copies landed on distinct
//!   switches (`Client::place_replicated`);
//! - a node crash is detected at the sockets (dead links → suspicion),
//!   routed around (detours), repaired (transit revival + read-repair),
//!   and never loses an acknowledged write;
//! - failures before the ack are *errors the caller sees*, never a
//!   silent fake-ack — under total owner isolation a placement either
//!   errors or is explicitly labeled `Degraded`;
//! - the whole exercise is replayable: the fault plan and workload are
//!   pure functions of the seed, so a failure report's repro line
//!   regenerates the identical schedule (checked across a 50-seed
//!   matrix).

use gred_cluster::{
    chaos_cluster_config, run_chaos, ChaosConfig, ChaosFabric, ChaosTransport, Cluster,
    ClusterConfig, LinkMode, NodeConfig,
};
use gred_hash::DataId;
use gred_net::{ServerPool, Topology};
use gred_testkit::{generate, ChaosPlan, Harness, HarnessConfig};
use std::time::Duration;

fn ring(switches: usize) -> gred::GredNetwork {
    let links: Vec<(usize, usize)> = (0..switches).map(|s| (s, (s + 1) % switches)).collect();
    let topo = Topology::from_links(switches, &links).unwrap();
    let pool = ServerPool::uniform(switches, 2, 10_000);
    gred::GredNetwork::build(topo, pool, gred::GredConfig::with_iterations(8).seeded(23)).unwrap()
}

/// The ISSUE's acceptance scenario: 16 switches, `k = 2` replication,
/// two seeded kills mid-workload, zero acknowledged-write loss.
#[test]
fn chaos_two_kills_zero_acked_loss() {
    let outcome = run_chaos(&ChaosConfig {
        seed: 2019,
        ..ChaosConfig::default()
    })
    .expect("chaos infrastructure boots");
    assert_eq!(outcome.killed.len(), 2, "both kills must fire: {outcome}");
    assert!(
        outcome.acked_writes >= 100,
        "the workload must make real progress: {outcome}"
    );
    assert_eq!(
        outcome.lost_acked,
        0,
        "acknowledged writes must survive two crashes: {outcome}\nreproduce: {}",
        outcome.repro_line()
    );
}

/// Same seed ⇒ same fault plan and same repro line, across 50 seeds.
/// This is what makes a red chaos run in CI actionable: the printed
/// command regenerates the identical kill/fault schedule.
#[test]
fn fifty_seed_matrix_is_deterministic() {
    let cfg = ChaosConfig::default();
    for seed in 0..50u64 {
        let a = ChaosPlan::generate(seed, cfg.ops, cfg.kills, cfg.link_faults);
        let b = ChaosPlan::generate(seed, cfg.ops, cfg.kills, cfg.link_faults);
        assert_eq!(a, b, "seed {seed}: plan generation must be deterministic");
        assert_eq!(
            a.events.len(),
            b.events.len(),
            "seed {seed}: event counts diverged"
        );
    }
    // Plans must actually differ across the matrix — a constant plan
    // would trivially satisfy the check above.
    let first = ChaosPlan::generate(0, cfg.ops, cfg.kills, cfg.link_faults);
    let distinct = (1..50u64)
        .map(|s| ChaosPlan::generate(s, cfg.ops, cfg.kills, cfg.link_faults))
        .filter(|p| p.events != first.events)
        .count();
    assert!(
        distinct >= 45,
        "only {distinct}/49 seeds produced distinct plans"
    );
}

/// A few full socket runs from the matrix: different seeds, different
/// kill schedules, same zero-loss verdict.
#[test]
fn seed_matrix_socket_runs_keep_acked_writes() {
    for seed in [3, 17, 29] {
        let outcome = run_chaos(&ChaosConfig {
            seed,
            switches: 8,
            ops: 80,
            kills: 1,
            link_faults: 2,
            ..ChaosConfig::default()
        })
        .expect("chaos infrastructure boots");
        assert_eq!(
            outcome.lost_acked,
            0,
            "seed {seed} lost acknowledged writes: {outcome}\nreproduce: {}",
            outcome.repro_line()
        );
        assert!(outcome.acked_writes > 0, "seed {seed} made no progress");
    }
}

/// Counter-asserted settling invariants, scraped purely over the wire:
/// after a seeded chaos plan heals, (1) the detour counter stops
/// increasing — fresh writes ride clean greedy paths; (2) the suspect
/// set drains empty — no node still distrusts a live peer; (3) received
/// invalidations match the writes broadcast exactly — each clean write
/// notifies every peer but the storing node once. These three
/// properties used to be observable only by grepping node logs; now
/// they are numbers in the [`gred_cluster::HealProbe`] the chaos run
/// scrapes from its own cluster.
#[test]
fn healed_cluster_counters_settle() {
    for seed in [3u64, 29] {
        let outcome = run_chaos(&ChaosConfig {
            seed,
            switches: 8,
            ops: 80,
            kills: 1,
            link_faults: 2,
            ..ChaosConfig::default()
        })
        .expect("chaos infrastructure boots");
        let probe = outcome
            .probe
            .as_ref()
            .expect("a healed cluster answers the post-heal scrape");

        assert_eq!(
            probe.detours_after, probe.detours_before,
            "seed {seed}: detours kept increasing after heal_all: {probe:?}"
        );
        assert_eq!(
            probe.suspect_links, 0,
            "seed {seed}: suspect set did not drain after the TTL: {probe:?}"
        );
        assert_eq!(
            probe.degraded_writes, 0,
            "seed {seed}: a healed cluster must ack probe writes clean: {probe:?}"
        );
        assert!(
            probe.clean_writes > 0,
            "seed {seed}: the probe must make progress: {probe:?}"
        );
        assert_eq!(
            probe.invalidations_delta,
            probe.clean_writes as u64 * (probe.nodes as u64 - 1),
            "seed {seed}: invalidation broadcasts lost or duplicated: {probe:?}"
        );
        assert_eq!(
            probe.nodes,
            8,
            "seed {seed}: every slot (including revived victims) must answer: {probe:?}"
        );
    }
}

/// Unacknowledged failures are loud, never silent: with every link into
/// the owner severed, a placement must either error or be explicitly
/// labeled `Degraded` — a clean `Ok` ack would be a lie. After the
/// links heal and suspicion expires, clean placement resumes.
#[test]
fn isolated_owner_never_acks_clean() {
    let net = ring(5);
    let id = DataId::new("isolated-owner-key");
    let owner = net.responsible_server(&id).switch;
    let fabric = ChaosFabric::new();
    let cluster =
        Cluster::boot_with(&net, chaos_cluster_config(), fabric.rewrite()).expect("cluster boots");
    for from in 0..cluster.len() {
        if from != owner {
            fabric.set_mode(from, owner, LinkMode::Severed);
        }
    }
    let access = (owner + 1) % 5;
    let mut client = cluster.client(access).expect("client connects");

    // A loud `Err` is equally acceptable; only a clean ack is a lie.
    if let Ok(reply) = client.place(&id, b"must not vanish".as_ref()) {
        assert!(
            !reply.is_clean(),
            "a clean ack with the owner unreachable is a silent lie"
        );
    }

    // Heal, wait out the suspicion TTL, and confirm clean service
    // resumes — detection is not a one-way door.
    fabric.heal_all();
    std::thread::sleep(chaos_cluster_config().node.suspect_ttl + Duration::from_millis(100));
    let mut clean = false;
    for _ in 0..5 {
        if let Ok(reply) = client.place(&id, b"must not vanish".as_ref()) {
            if reply.is_clean() {
                clean = true;
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    assert!(clean, "clean placement must resume after links heal");
    cluster.shutdown();
    fabric.shutdown();
}

/// The read-cache staleness invariant under churn: with hot-key
/// traffic (repeated reads of a small key set, so the access nodes'
/// caches are actually exercised) across two crash/restart cycles, no
/// read ever returns a version older than the last *clean-acked* write
/// of that key, and no read resurrects a value whose only copy died
/// with a crashed owner. This is the socket-level twin of the oracle's
/// `cache_never_serves_stale_across_seeded_churn`.
#[test]
fn hot_key_reads_never_go_stale_under_chaos() {
    let mut net = ring(6);
    let fabric = ChaosFabric::new();
    let mut cluster =
        Cluster::boot_with(&net, chaos_cluster_config(), fabric.rewrite()).expect("cluster boots");
    let keys: Vec<DataId> = (0..4).map(|k| DataId::new(format!("hot/{k}"))).collect();
    let mut client = cluster.client_multi(&[0, 1, 2]).expect("client connects");
    // Per key: the newest version whose write acked clean, and whether
    // the key's only copy died with a crash (so any later hit before a
    // rewrite is a resurrection).
    let mut acked: Vec<Option<u64>> = vec![None; keys.len()];
    let mut tombstoned = vec![false; keys.len()];
    let mut version = 0u64;
    for round in 0..30usize {
        let k = round % keys.len();
        version += 1;
        if let Ok(reply) = client.place(&keys[k], format!("{version}")) {
            if reply.is_clean() {
                acked[k] = Some(version);
                tombstoned[k] = false;
            }
        }
        // Read every key twice: the second read of an unchanged hot key
        // is the cache's chance to serve — and to go stale.
        for (i, key) in keys.iter().enumerate() {
            for pass in 0..2 {
                let Ok(reply) = client.retrieve(key) else {
                    continue;
                };
                if !reply.is_hit() {
                    continue;
                }
                let got: u64 = std::str::from_utf8(&reply.payload)
                    .expect("versioned payload")
                    .parse()
                    .expect("versioned payload");
                assert!(
                    !tombstoned[i],
                    "round {round} pass {pass}: read of {key} resurrected \
                     a crash-tombstoned value (v{got})"
                );
                if let Some(promised) = acked[i] {
                    assert!(
                        got >= promised,
                        "round {round} pass {pass}: read of {key} returned \
                         v{got}, older than the clean-acked v{promised}"
                    );
                }
            }
        }
        // Two mid-run crashes: kill the current owner of a hot key,
        // mirror the crash on the model, push the post-crash planes
        // (which flushes every cache), and revive the slot as transit.
        if round == 9 || round == 19 {
            let victim = net
                .responsible_server(&keys[if round == 9 { 0 } else { 2 }])
                .switch;
            if net.members().contains(&victim) && cluster.try_node(victim).is_some() {
                cluster.crash_node(victim);
                for (i, key) in keys.iter().enumerate() {
                    if net.responsible_server(key).switch == victim {
                        tombstoned[i] = true;
                        acked[i] = None;
                    }
                }
                net.crash_switch(victim).expect("model mirrors the crash");
                cluster.apply_planes(&net);
                cluster.restart_node(victim, &net).expect("transit revival");
            }
        }
    }
    let report = cluster.shutdown();
    fabric.shutdown();
    let hot = report.hot_stats();
    assert!(
        hot.cache_hits >= 1,
        "hot-key traffic must actually exercise the cache: {hot}"
    );
}

/// Twin-network parity: the same seeded workload (places, overwrites,
/// repeated reads, one crash/restart cycle) against a cache-enabled and
/// a cache-disabled cluster must serve byte-identical payloads at every
/// read. The cache may only change *where* a read is answered from,
/// never *what* it answers.
#[test]
fn cache_on_and_off_twins_serve_identical_payloads() {
    let run = |cache_bytes: usize| -> Vec<Option<Vec<u8>>> {
        let mut net = ring(5);
        let cfg = ClusterConfig {
            node: NodeConfig {
                cache_bytes,
                ..NodeConfig::default()
            },
            ..ClusterConfig::default()
        };
        let mut cluster = Cluster::boot(&net, cfg).expect("cluster boots");
        let keys: Vec<DataId> = (0..8).map(|k| DataId::new(format!("twin/{k}"))).collect();
        let mut client = cluster.client(0).expect("client connects");
        let mut observed = Vec::new();
        for round in 0..6usize {
            for (i, key) in keys.iter().enumerate() {
                if (round + i) % 2 == 0 {
                    client
                        .place(key, format!("twin/{i}/v{round}"))
                        .expect("placement succeeds");
                }
                // Two reads back to back: in the cached twin the second
                // one is typically a hit; the payload must not care.
                for _ in 0..2 {
                    let reply = client.retrieve(key).expect("retrieval answers");
                    observed.push(reply.is_hit().then(|| reply.payload.to_vec()));
                }
            }
            if round == 3 {
                let victim = net.responsible_server(&keys[0]).switch;
                cluster.crash_node(victim);
                net.crash_switch(victim).expect("model mirrors the crash");
                cluster.apply_planes(&net);
                cluster.restart_node(victim, &net).expect("transit revival");
            }
        }
        let report = cluster.shutdown();
        assert_eq!(report.total_errors(), 0);
        if cache_bytes == 0 {
            let hot = report.hot_stats();
            assert_eq!(
                (hot.cache_hits, hot.cache_misses),
                (0, 0),
                "a disabled cache must not even count probes: {hot}"
            );
        }
        observed
    };
    let cached = run(NodeConfig::default().cache_bytes);
    let uncached = run(0);
    assert_eq!(
        cached, uncached,
        "cache-on and cache-off twins diverged in served payloads"
    );
}

/// The model-based harness replays its schedule over a fabric-wrapped
/// cluster while a chaos plan kills nodes (durable restarts) and breaks
/// links between operations. Retries, client rotation, and suspect
/// detours must mask every fault: the socket view never diverges from
/// the in-process model.
#[test]
fn probed_replay_survives_chaos_plan() {
    let harness = Harness::new(HarnessConfig {
        switches: 8,
        max_switches: 10,
        ..HarnessConfig::default()
    });
    let seed = 47;
    let ops = generate(seed, 24);
    let plan = ChaosPlan::generate(seed, ops.len(), 2, 3);
    let mut transport = ChaosTransport::new(plan);
    let outcome = harness.replay_probed(seed, &ops, &mut transport);
    assert!(
        outcome.failure.is_none(),
        "probed chaos run diverged: {:?}",
        outcome.failure
    );
    assert!(
        transport.faults_fired() > 0,
        "the chaos plan must actually fire during the replay"
    );
}
