//! Property-based integration tests of GRED's core guarantees:
//! guaranteed delivery, access-point independence, and placement /
//! retrieval round trips, over randomized topologies and key sets.

use bytes::Bytes;
use gred::{GredConfig, GredNetwork};
use gred_hash::DataId;
use gred_net::{waxman_topology, ServerPool, WaxmanConfig};
use proptest::prelude::*;

fn arb_network() -> impl Strategy<Value = (usize, u64, usize)> {
    // (switches, topology seed, c-regulation iterations)
    (
        5usize..30,
        0u64..1000,
        prop_oneof![Just(0usize), Just(10), Just(30)],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Greedy forwarding from every access switch terminates at the switch
    /// whose position is nearest the key — the guaranteed-delivery theorem
    /// lifted to the full network, including virtual links.
    #[test]
    fn delivery_is_guaranteed_and_access_independent(
        (switches, seed, iters) in arb_network(),
        keys in proptest::collection::vec("[a-z0-9/]{4,20}", 5..15),
    ) {
        let (topo, _) = waxman_topology(&WaxmanConfig::with_switches(switches, seed));
        let pool = ServerPool::uniform(switches, 3, u64::MAX);
        let net = GredNetwork::build(
            topo,
            pool,
            GredConfig::with_iterations(iters).seeded(seed),
        ).expect("builds");

        for key in &keys {
            let id = DataId::new(key);
            let expected = net.responsible_server(&id);
            for access in 0..switches {
                let pos = net.position_of_id(&id);
                let route = gred::plane::forwarding::route(net.dataplanes(), access, pos, &id)
                    .expect("routes");
                prop_assert_eq!(route.server, expected,
                    "key {} from access {}: reached {:?}, expected {:?}",
                    key, access, route.server, expected);
                // Greedy trajectory strictly approaches the key position.
                // The data plane compares squared distances (forwarding
                // only when a neighbor is strictly closer; equidistant
                // neighbors merely tie-break by (x, then y) for
                // determinism), so squared distance is the exact
                // invariant — `sqrt` can round two distinct squared
                // values to the same distance.
                let p = net.position_of_id(&id);
                for w in route.overlay.windows(2) {
                    let d0 = net.position_of_switch(w[0]).unwrap().distance_squared(p);
                    let d1 = net.position_of_switch(w[1]).unwrap().distance_squared(p);
                    prop_assert!(d1 < d0, "greedy step must make progress");
                }
            }
        }
    }

    /// place → retrieve round-trips payloads exactly, from any access pair.
    #[test]
    fn round_trip_integrity(
        (switches, seed, iters) in arb_network(),
        entries in proptest::collection::vec(("[a-z]{3,12}", proptest::collection::vec(any::<u8>(), 0..64)), 3..10),
    ) {
        let (topo, _) = waxman_topology(&WaxmanConfig::with_switches(switches, seed));
        let pool = ServerPool::uniform(switches, 2, u64::MAX);
        let mut net = GredNetwork::build(
            topo,
            pool,
            GredConfig::with_iterations(iters).seeded(seed),
        ).expect("builds");

        for (i, (key, payload)) in entries.iter().enumerate() {
            let id = DataId::new(format!("{key}/{i}"));
            net.place(&id, payload.clone(), i % switches).expect("places");
            let got = net.retrieve(&id, (i * 3 + 1) % switches).expect("retrieves");
            prop_assert_eq!(got.payload.as_ref(), payload.as_slice());
        }
    }

    /// The route's physical hop count is at least the shortest-path
    /// distance and at most the full switch population (sanity bounds for
    /// the stretch metric).
    #[test]
    fn route_length_bounds(
        (switches, seed, iters) in arb_network(),
        key in "[a-z0-9]{6,16}",
    ) {
        let (topo, _) = waxman_topology(&WaxmanConfig::with_switches(switches, seed));
        let pool = ServerPool::uniform(switches, 2, u64::MAX);
        let net = GredNetwork::build(
            topo,
            pool,
            GredConfig::with_iterations(iters).seeded(seed),
        ).expect("builds");
        let id = DataId::new(key);
        let pos = net.position_of_id(&id);
        for access in 0..switches {
            let route = gred::plane::forwarding::route(net.dataplanes(), access, pos, &id)
                .expect("routes");
            let shortest = net.topology().shortest_path(access, route.dest)
                .expect("connected").len() as u32 - 1;
            prop_assert!(route.physical_hops() >= shortest);
            // Generous upper bound: each greedy step costs at most the
            // network diameter in relays.
            prop_assert!(route.physical_hops() <= (switches * switches) as u32);
        }
    }
}

#[test]
fn loads_sum_to_total_items_across_seeds() {
    for seed in 0..5 {
        let (topo, _) = waxman_topology(&WaxmanConfig::with_switches(12, seed));
        let pool = ServerPool::uniform(12, 3, u64::MAX);
        let mut net = GredNetwork::build(topo, pool, GredConfig::default().seeded(seed)).unwrap();
        for i in 0..150 {
            net.place(
                &DataId::new(format!("sum/{seed}/{i}")),
                Bytes::new(),
                i % 12,
            )
            .unwrap();
        }
        let total: u64 = net.server_loads().iter().map(|&(_, l)| l).sum();
        assert_eq!(total, 150, "seed {seed}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Arbitrary interleavings of placements, extensions, and retractions
    /// keep every stored item retrievable and the system invariants green.
    #[test]
    fn extension_sequences_preserve_retrievability(
        seed in 0u64..500,
        ops in proptest::collection::vec(0u8..4, 10..30),
    ) {
        let (topo, _) = waxman_topology(&WaxmanConfig::with_switches(10, seed));
        let pool = ServerPool::uniform(10, 2, u64::MAX);
        let mut net = GredNetwork::build(
            topo,
            pool,
            GredConfig::with_iterations(5).seeded(seed),
        ).expect("builds");

        let mut placed: Vec<DataId> = Vec::new();
        let mut extended: Vec<gred_net::ServerId> = Vec::new();
        for (step, op) in ops.iter().enumerate() {
            match op {
                0 | 1 => {
                    let id = DataId::new(format!("seq/{seed}/{step}"));
                    net.place(&id, Bytes::new(), step % 10).expect("places");
                    placed.push(id);
                }
                2 => {
                    let server = gred_net::ServerId {
                        switch: step % 10,
                        index: step % 2,
                    };
                    if net.extend_range(server).is_ok() {
                        extended.push(server);
                    }
                }
                _ => {
                    if let Some(server) = extended.pop() {
                        net.retract_range(server).expect("retracts");
                    }
                }
            }
            // Every placed item stays retrievable after every operation.
            for id in &placed {
                prop_assert!(net.retrieve(id, 0).is_ok(), "step {step}: {id} lost");
            }
        }
        prop_assert_eq!(net.verify_invariants(), Vec::<String>::new());
    }
}
