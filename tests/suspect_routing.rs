//! Property-based tests of suspect-aware greedy forwarding
//! (`route_avoiding`): the failure-detection behaviour the cluster
//! runtime relies on, checked in-process over randomized topologies.
//!
//! Three guarantees, mirroring the healthy-network properties in
//! `tests/guarantees.rs`:
//!
//! 1. **Termination under arbitrary death.** With up to `f` DT members
//!    marked dead, filtered greedy still terminates within the overlay
//!    bound and every step strictly decreases squared distance to the
//!    key — the filter removes candidates, it never adds a
//!    non-improving hop.
//! 2. **Dead switches carry no deliveries.** The walk starts at a live
//!    access switch and only ever forwards into live neighbors, so the
//!    delivering switch is always alive.
//! 3. **Recovery restores the one-hop invariant.** Once every suspect
//!    is unmarked, `route_avoiding` reports zero detours and lands on
//!    exactly the `responsible_server` that `tests/guarantees.rs`
//!    proves for the unfiltered pipeline — detection is not a one-way
//!    door.

use gred::plane::forwarding::{route, route_avoiding};
use gred_hash::DataId;
use gred_net::{waxman_topology, ServerPool, WaxmanConfig};
use proptest::prelude::*;
use std::collections::HashSet;

fn arb_network() -> impl Strategy<Value = (usize, u64, usize)> {
    // (switches, topology seed, c-regulation iterations)
    (
        6usize..24,
        0u64..1000,
        prop_oneof![Just(0usize), Just(10), Just(30)],
    )
}

fn build(switches: usize, seed: u64, iters: usize) -> gred::GredNetwork {
    let (topo, _) = waxman_topology(&WaxmanConfig::with_switches(switches, seed));
    let pool = ServerPool::uniform(switches, 2, u64::MAX);
    gred::GredNetwork::build(
        topo,
        pool,
        gred::GredConfig::with_iterations(iters).seeded(seed),
    )
    .expect("builds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Filtered greedy terminates with strict progress for *any* set of
    /// up to f = n/3 dead switches, from every live access switch.
    #[test]
    fn filtered_greedy_terminates_with_dead_members(
        (switches, seed, iters) in arb_network(),
        dead_picks in proptest::collection::vec(0usize..1000, 0..8),
        key in "[a-z0-9/]{4,20}",
    ) {
        let net = build(switches, seed, iters);
        let f = switches / 3;
        let dead: HashSet<usize> = dead_picks
            .iter()
            .map(|p| p % switches)
            .take(f)
            .collect();
        let alive = |s: usize| !dead.contains(&s);

        let id = DataId::new(&key);
        let pos = net.position_of_id(&id);
        for access in (0..switches).filter(|a| alive(*a)) {
            let (r, detours) =
                route_avoiding(net.dataplanes(), access, pos, &id, &alive)
                    .expect("filtered greedy must terminate, not error");
            // Termination bound: at most one overlay hop per switch.
            prop_assert!(r.overlay.len() <= switches);
            // Strict decrease in squared distance at every overlay step —
            // same exact invariant as the unfiltered walk in guarantees.rs.
            for w in r.overlay.windows(2) {
                let d0 = net.position_of_switch(w[0]).unwrap().distance_squared(pos);
                let d1 = net.position_of_switch(w[1]).unwrap().distance_squared(pos);
                prop_assert!(d1 < d0, "filtered greedy step must make progress");
            }
            // Delivery always happens at a live switch: the start is
            // live and the filter bars forwarding into the dead.
            prop_assert!(
                alive(r.dest),
                "delivered at dead switch {} (dead set {:?})", r.dest, dead
            );
            // A detour-free walk is byte-identical to the unfiltered one.
            if detours == 0 {
                let unfiltered = route(net.dataplanes(), access, pos, &id).expect("routes");
                prop_assert_eq!(&r.overlay, &unfiltered.overlay);
                prop_assert_eq!(r.server, unfiltered.server);
            }
        }
    }

    /// Unmarking every suspect restores exact one-hop delivery: zero
    /// detours, and the true `responsible_server` from every access —
    /// the access-independence theorem of `tests/guarantees.rs`,
    /// recovered after a detection episode.
    #[test]
    fn recovery_restores_one_hop_delivery(
        (switches, seed, iters) in arb_network(),
        keys in proptest::collection::vec("[a-z0-9]{4,16}", 3..8),
    ) {
        let net = build(switches, seed, iters);
        for key in &keys {
            let id = DataId::new(key);
            let expected = net.responsible_server(&id);
            let pos = net.position_of_id(&id);
            for access in 0..switches {
                let (r, detours) =
                    route_avoiding(net.dataplanes(), access, pos, &id, &|_| true)
                        .expect("routes");
                prop_assert_eq!(detours, 0, "no suspects, so no detours");
                prop_assert_eq!(r.server, expected,
                    "key {} from access {}: reached {:?}, expected {:?}",
                    key, access, r.server, expected);
            }
        }
    }
}

/// Deterministic spot check: killing the true owner forces a detoured
/// delivery elsewhere; reviving it restores the original route.
#[test]
fn owner_death_detours_and_revival_recovers() {
    let net = build(12, 7, 10);
    let id = DataId::new("owner-death-spot-check");
    let pos = net.position_of_id(&id);
    let owner = net.responsible_server(&id).switch;
    let access = (0..12).find(|&a| a != owner).unwrap();

    let (detoured, detours) =
        route_avoiding(net.dataplanes(), access, pos, &id, &|s| s != owner).unwrap();
    assert!(detours > 0, "avoiding the owner must cost detours");
    assert_ne!(detoured.dest, owner, "must not deliver at the dead owner");

    let (recovered, detours) =
        route_avoiding(net.dataplanes(), access, pos, &id, &|_| true).unwrap();
    assert_eq!(detours, 0);
    assert_eq!(recovered.server, net.responsible_server(&id));
}
