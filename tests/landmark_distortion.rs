//! Quality bounds for the landmark (Nyström-style) embedding: the
//! subsampled MDS must preserve the pairwise-distance structure of the
//! full classical embedding, and greedy routing on a landmark-built
//! network must still deliver every request to the responsible server.
//!
//! Pairwise distances — not raw coordinates — are compared, because two
//! eigendecompositions may legitimately differ by rotation/reflection of
//! the plane; the distance matrix is the rotation-invariant artifact the
//! DT and greedy forwarding actually consume.

use gred::control::{m_position_landmark_with, m_position_with};
use gred::{GredConfig, GredNetwork};
use gred_hash::DataId;
use gred_net::{waxman_topology, ServerPool, WaxmanConfig};

/// All pairwise distances of an embedding, row-major upper triangle.
fn pairwise(positions: &[gred_geometry::Point2]) -> Vec<f64> {
    let mut out = Vec::new();
    for i in 0..positions.len() {
        for j in i + 1..positions.len() {
            out.push(positions[i].distance(positions[j]));
        }
    }
    out
}

/// Pearson correlation of two equally long samples.
fn correlation(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    let (ma, mb) = (a.iter().sum::<f64>() / n, b.iter().sum::<f64>() / n);
    let cov = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| (x - ma) * (y - mb))
        .sum::<f64>();
    let (va, vb) = (
        a.iter().map(|&x| (x - ma) * (x - ma)).sum::<f64>(),
        b.iter().map(|&y| (y - mb) * (y - mb)).sum::<f64>(),
    );
    cov / (va.sqrt() * vb.sqrt()).max(f64::MIN_POSITIVE)
}

#[test]
fn landmark_embedding_preserves_pairwise_structure() {
    // Dense Waxman graphs have a small hop diameter, so even the *full*
    // classical MDS achieves only moderate hop correlation at this size;
    // the meaningful property is therefore relative — the subsampled
    // embedding must stay close to whatever structure the full one
    // recovers — plus a bounded absolute distortion between the two.
    for (switches, k, seed) in [(120usize, 24usize, 7u64), (120, 24, 19), (120, 24, 42)] {
        let (topo, _) = waxman_topology(&WaxmanConfig::with_switches(switches, seed));
        let members: Vec<usize> = (0..switches).collect();

        let full = m_position_with(&topo, &members, 1).expect("connected");
        let landmark =
            m_position_landmark_with(&topo, &members, k, seed, 1, None).expect("connected");

        let df = pairwise(&full.positions);
        let dl = pairwise(&landmark.positions);

        // Positively related distance matrices: the landmark embedding
        // approximates the same metric structure, not an arbitrary
        // layout (empirical range on these graphs: 0.38–0.91).
        let r = correlation(&df, &dl);
        assert!(
            r > 0.3,
            "seed {seed}: landmark vs full pairwise correlation {r:.3} too low"
        );

        // Bounded mean relative distortion (both embeddings are
        // normalized to the same unit square, so scales are comparable).
        let mean_f = df.iter().sum::<f64>() / df.len() as f64;
        let mean_abs_err = df
            .iter()
            .zip(&dl)
            .map(|(&a, &b)| (a - b).abs())
            .sum::<f64>()
            / df.len() as f64;
        assert!(
            mean_abs_err / mean_f < 0.5,
            "seed {seed}: mean relative distortion {:.3} exceeds bound",
            mean_abs_err / mean_f
        );
    }
}

#[test]
fn landmark_embedding_tracks_hops_nearly_as_well_as_full_mds() {
    // The property the paper needs from M-position: virtual distance
    // grows with physical hop distance. The landmark approximation must
    // retain most of whatever hop correlation the exact embedding
    // achieves on the same graph (it cannot be *better* than the graph
    // allows, so the bound is relative to full MDS).
    for (switches, k, seed) in [(100usize, 20usize, 5u64), (120, 24, 7), (60, 12, 1)] {
        let (topo, _) = waxman_topology(&WaxmanConfig::with_switches(switches, seed));
        let members: Vec<usize> = (0..switches).collect();
        let full = m_position_with(&topo, &members, 1).expect("connected");
        let lm = m_position_landmark_with(&topo, &members, k, seed, 1, None).expect("connected");

        let mut hops_flat = Vec::new();
        let mut full_d = Vec::new();
        let mut lm_d = Vec::new();
        for i in 0..switches {
            let hops = topo.bfs_hops(i);
            for (j, &h) in hops.iter().enumerate().skip(i + 1) {
                hops_flat.push(f64::from(h));
                full_d.push(full.positions[i].distance(full.positions[j]));
                lm_d.push(lm.positions[i].distance(lm.positions[j]));
            }
        }
        let r_full = correlation(&hops_flat, &full_d);
        let r_lm = correlation(&hops_flat, &lm_d);
        assert!(
            r_lm > 0.75 * r_full,
            "sw={switches} seed={seed}: landmark hop correlation {r_lm:.3} \
             lost too much versus full MDS {r_full:.3}"
        );
        assert!(
            r_lm > 0.3,
            "sw={switches} seed={seed}: hop correlation {r_lm:.3} degenerate"
        );
    }
}

#[test]
fn greedy_routing_on_landmark_embedding_delivers_everything() {
    // End to end: a landmark-built network must route every placement
    // and retrieval to the provably responsible server, from arbitrary
    // access switches — the delivery guarantee does not depend on
    // embedding quality, only on the DT being a real triangulation.
    for (switches, landmarks, seed) in [(60, 12, 1u64), (90, 16, 2), (120, 24, 3)] {
        let (topo, _) = waxman_topology(&WaxmanConfig::with_switches(switches, seed));
        let pool = ServerPool::uniform(switches, 2, u64::MAX);
        let mut net = GredNetwork::build(
            topo,
            pool,
            GredConfig::with_iterations(10)
                .seeded(seed)
                .landmarks(landmarks),
        )
        .expect("landmark build");
        assert!(net.verify_invariants().is_empty());

        for i in 0..120 {
            let id = DataId::new(format!("lm-{switches}-{i}"));
            let predicted = net.responsible_server(&id);
            let receipt = net
                .place(&id, bytes::Bytes::new(), i % switches)
                .expect("placement routes");
            assert_eq!(receipt.primary, predicted, "switches={switches} key {i}");
            let got = net
                .retrieve(&id, (i * 7) % switches)
                .expect("retrieval routes");
            assert_eq!(got.server, predicted, "switches={switches} key {i}");
        }
    }
}
