//! Loopback cluster integration test (the tentpole's acceptance bar).
//!
//! Boots a 16-switch GRED network as 16 real TCP nodes, places 200 ids
//! through rotating access switches, retrieves all 200 from a client
//! attached to one deterministically chosen node, and checks the remote
//! observations against an identical in-process twin network:
//!
//! - every placement ack names exactly the server the twin's
//!   `place()` stores on,
//! - every reply's in-band hop count equals the twin route's
//!   `physical_hops()`,
//! - after the workload, every switch's `packets_processed` counter
//!   matches the twin's — the TCP path exercised the data plane
//!   *exactly* as the in-process walk does, packet for packet,
//! - graceful shutdown joins every worker and loses nothing.

use gred::{GredConfig, GredNetwork};
use gred_cluster::{Cluster, ClusterConfig};
use gred_hash::DataId;
use gred_net::{waxman_topology, ServerPool, WaxmanConfig};
use std::collections::HashMap;

const SEED: u64 = 2019;
const SWITCHES: usize = 16;
const OPS: usize = 200;

fn build_network() -> GredNetwork {
    let (topo, _) = waxman_topology(&WaxmanConfig::with_switches(SWITCHES, SEED));
    let pool = ServerPool::uniform(SWITCHES, 2, u64::MAX);
    let cfg = GredConfig {
        auto_extend: false,
        ..GredConfig::with_iterations(8).seeded(SEED)
    };
    GredNetwork::build(topo, pool, cfg).expect("seeded network builds")
}

/// Deterministic access-switch sequence (no RNG state shared with the
/// network build).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

#[test]
fn loopback_cluster_matches_the_in_process_data_plane() {
    // `net` boots the cluster; `twin` is an identical build that walks
    // every request in-process for comparison. Both are deterministic
    // functions of SEED.
    let net = build_network();
    let mut twin = build_network();
    for plane in twin.dataplanes() {
        plane.reset_counters();
    }

    let cluster = Cluster::boot(&net, ClusterConfig::default()).expect("cluster boots");
    assert_eq!(cluster.len(), SWITCHES);
    let members = net.members().to_vec();
    assert!(members.len() > 1, "seeded build keeps several DT members");

    let mut lcg = Lcg(SEED);
    let mut clients: HashMap<usize, gred_cluster::Client> = HashMap::new();

    // Place OPS ids through rotating access members.
    for i in 0..OPS {
        let id = DataId::new(format!("loopback/{i}"));
        let payload = format!("payload/{SEED}/{i}");
        let access = members[lcg.next() as usize % members.len()];
        let client = match clients.entry(access) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(cluster.client(access).expect("client connects"))
            }
        };

        let reply = client
            .place(&id, payload.clone().into_bytes())
            .unwrap_or_else(|e| panic!("place {i} via {access} failed: {e}"));
        let receipt = twin
            .place(&id, payload.into_bytes(), access)
            .expect("twin placement succeeds");

        assert!(reply.is_hit(), "place {i} not acked");
        assert_eq!(
            reply.ack_server(),
            Some(receipt.server),
            "place {i}: TCP ack and in-process receipt disagree on the server"
        );
        assert_eq!(
            u32::from(reply.hops),
            receipt.route.physical_hops(),
            "place {i}: TCP hop count diverges from the in-process route"
        );
    }

    // Retrieve all OPS ids from a client attached to one (seeded-random)
    // member node.
    let retrieval_access = members[lcg.next() as usize % members.len()];
    let mut reader = cluster
        .client(retrieval_access)
        .expect("retrieval client connects");
    for i in 0..OPS {
        let id = DataId::new(format!("loopback/{i}"));
        let reply = reader
            .retrieve(&id)
            .unwrap_or_else(|e| panic!("retrieve {i} via {retrieval_access} failed: {e}"));
        let expected = twin
            .retrieve(&id, retrieval_access)
            .expect("twin retrieval hits");

        assert!(reply.is_hit(), "retrieve {i}: lost over TCP");
        assert_eq!(
            reply.payload.as_ref(),
            expected.payload.as_ref(),
            "retrieve {i}: payload corrupted in transit"
        );
        assert_eq!(
            u32::from(reply.hops),
            expected.route.physical_hops(),
            "retrieve {i}: TCP hop count diverges from the in-process route"
        );
    }

    // The TCP path drove every switch's pipeline exactly as the twin's
    // in-process walk did: same decisions, same relays, per switch.
    for switch in 0..SWITCHES {
        assert_eq!(
            cluster.node(switch).packets_processed(),
            twin.dataplanes()[switch].packets_processed(),
            "switch {switch}: packets_processed diverges from the twin"
        );
    }

    // Graceful shutdown: every worker joins, nothing was lost.
    drop(clients);
    drop(reader);
    let report = cluster.shutdown();
    assert_eq!(report.total_errors(), 0, "zero lost requests required");
    assert_eq!(
        report.stored_items(),
        OPS,
        "every placed id is stored exactly once"
    );
    assert!(
        report.workers_joined() > 0,
        "shutdown must join the connection workers"
    );
    assert_eq!(
        report.total_requests(),
        report.nodes.iter().map(|n| n.requests).sum::<u64>()
    );
}

/// Batched parity: the same 200-op workload shipped as pipelined batch
/// frames (bursts of `place_many`/`retrieve_many`) must drive the data
/// plane *identically* to sending every packet singly — same ack
/// servers, same hop counts, same per-switch `packets_processed` as the
/// in-process twin that walks each request one at a time. This is the
/// batch ≡ singles acceptance bar for the batched transport.
#[test]
fn pipelined_batches_match_the_in_process_data_plane() {
    const BURST: usize = 25;

    let net = build_network();
    let mut twin = build_network();
    for plane in twin.dataplanes() {
        plane.reset_counters();
    }

    let cluster = Cluster::boot(&net, ClusterConfig::default()).expect("cluster boots");
    let members = net.members().to_vec();
    let mut lcg = Lcg(SEED);
    let mut clients: HashMap<usize, gred_cluster::Client> = HashMap::new();

    // Place OPS ids in bursts of BURST, each burst entering through one
    // rotating access member; the twin places the same ids singly from
    // the same access node.
    for burst in 0..OPS / BURST {
        let access = members[lcg.next() as usize % members.len()];
        let items: Vec<(gred_hash::DataId, bytes::Bytes)> = (0..BURST)
            .map(|j| {
                let i = burst * BURST + j;
                (
                    DataId::new(format!("batched/{i}")),
                    bytes::Bytes::from(format!("payload/{SEED}/{i}")),
                )
            })
            .collect();
        let client = clients
            .entry(access)
            .or_insert_with(|| cluster.client(access).expect("client connects"));
        let replies = client
            .place_many(&items)
            .unwrap_or_else(|e| panic!("burst {burst} via {access} failed: {e}"));
        assert_eq!(replies.len(), items.len());
        for (j, ((id, payload), reply)) in items.iter().zip(&replies).enumerate() {
            let receipt = twin
                .place(id, payload.to_vec(), access)
                .expect("twin placement succeeds");
            assert!(reply.is_hit(), "burst {burst} item {j} not acked");
            assert_eq!(
                reply.ack_server(),
                Some(receipt.server),
                "burst {burst} item {j}: batched ack disagrees with the twin's server"
            );
            assert_eq!(
                u32::from(reply.hops),
                receipt.route.physical_hops(),
                "burst {burst} item {j}: batched hop count diverges from the twin"
            );
        }
    }

    // Retrieve all OPS ids as one big pipelined burst (several chunks
    // deep) from a single seeded-random access member.
    let retrieval_access = members[lcg.next() as usize % members.len()];
    let mut reader = cluster
        .client(retrieval_access)
        .expect("retrieval client connects");
    let ids: Vec<gred_hash::DataId> = (0..OPS)
        .map(|i| DataId::new(format!("batched/{i}")))
        .collect();
    let replies = reader
        .retrieve_many(&ids)
        .unwrap_or_else(|e| panic!("batched retrieval via {retrieval_access} failed: {e}"));
    assert_eq!(replies.len(), OPS);
    for (i, (id, reply)) in ids.iter().zip(&replies).enumerate() {
        let expected = twin
            .retrieve(id, retrieval_access)
            .expect("twin retrieval hits");
        assert!(reply.is_hit(), "batched retrieve {i}: lost over TCP");
        assert_eq!(
            reply.payload.as_ref(),
            expected.payload.as_ref(),
            "batched retrieve {i}: payload corrupted in transit"
        );
        assert_eq!(
            u32::from(reply.hops),
            expected.route.physical_hops(),
            "batched retrieve {i}: hop count diverges from the twin"
        );
    }

    // Batch ≡ singles down to the per-switch packet counters: grouping
    // packets into frames and peer RPCs must not add, drop, or reroute
    // a single pipeline decision.
    for switch in 0..SWITCHES {
        assert_eq!(
            cluster.node(switch).packets_processed(),
            twin.dataplanes()[switch].packets_processed(),
            "switch {switch}: batched packets_processed diverges from the twin"
        );
    }

    drop(clients);
    drop(reader);
    let report = cluster.shutdown();
    assert_eq!(report.total_errors(), 0, "zero lost requests required");
    assert_eq!(
        report.stored_items(),
        OPS,
        "every placed id is stored exactly once"
    );
}

/// Contention variant: 8 client threads hammer a 4-switch cluster at
/// once, so every node serves several concurrent client connections
/// while answering nested peer RPCs over the same multiplexed links.
///
/// Under the old one-connection-per-peer design a busy link forced an
/// emergency one-shot TCP connection per overlapping request; the
/// multiplexed links must absorb the whole burst — the test asserts the
/// `oneshot_fallbacks` counter stayed at zero — without corrupting a
/// single payload.
#[test]
fn concurrent_clients_share_multiplexed_links_without_fallbacks() {
    const CONTENTION_SWITCHES: usize = 4;
    const CLIENT_THREADS: usize = 8;
    const OPS_PER_THREAD: usize = 25;

    let (topo, _) = waxman_topology(&WaxmanConfig::with_switches(CONTENTION_SWITCHES, SEED));
    let pool = ServerPool::uniform(CONTENTION_SWITCHES, 2, u64::MAX);
    let cfg = GredConfig {
        auto_extend: false,
        ..GredConfig::with_iterations(8).seeded(SEED)
    };
    let net = GredNetwork::build(topo, pool, cfg).expect("seeded network builds");
    let cluster = Cluster::boot(&net, ClusterConfig::default()).expect("cluster boots");
    let members = net.members().to_vec();

    // Every thread places its own ids through its own access node, then
    // reads back every one of them and checks payload parity.
    std::thread::scope(|scope| {
        for t in 0..CLIENT_THREADS {
            let access = members[t % members.len()];
            let cluster = &cluster;
            scope.spawn(move || {
                let mut client = cluster.client(access).expect("client connects");
                for i in 0..OPS_PER_THREAD {
                    let id = DataId::new(format!("contention/{t}/{i}"));
                    let payload = format!("payload/{t}/{i}");
                    let reply = client
                        .place(&id, payload.clone().into_bytes())
                        .unwrap_or_else(|e| panic!("thread {t} place {i} failed: {e}"));
                    assert!(reply.is_hit(), "thread {t} place {i} not acked");
                }
                for i in 0..OPS_PER_THREAD {
                    let id = DataId::new(format!("contention/{t}/{i}"));
                    let reply = client
                        .retrieve(&id)
                        .unwrap_or_else(|e| panic!("thread {t} retrieve {i} failed: {e}"));
                    assert!(reply.is_hit(), "thread {t} retrieve {i}: lost");
                    assert_eq!(
                        reply.payload.as_ref(),
                        format!("payload/{t}/{i}").as_bytes(),
                        "thread {t} retrieve {i}: payload corrupted under contention"
                    );
                }
            });
        }
    });

    let report = cluster.shutdown();
    assert_eq!(report.total_errors(), 0, "zero lost requests required");
    assert_eq!(
        report.stored_items(),
        CLIENT_THREADS * OPS_PER_THREAD,
        "every placed id is stored exactly once"
    );
    let hot = report.hot_stats();
    assert_eq!(
        hot.oneshot_fallbacks, 0,
        "the multiplexed links must absorb the burst without emergency \
         one-shot connections; got {hot}"
    );
    assert_eq!(
        hot.link_reconnects, 0,
        "no link should have failed during a healthy run; got {hot}"
    );
    assert!(
        hot.frames_decoded > 0,
        "hot-path counters must be live; got {hot}"
    );
}
