//! Loopback cluster integration test (the tentpole's acceptance bar).
//!
//! Boots a 16-switch GRED network as 16 real TCP nodes, places 200 ids
//! through rotating access switches, retrieves all 200 from a client
//! attached to one deterministically chosen node, and checks the remote
//! observations against an identical in-process twin network:
//!
//! - every placement ack names exactly the server the twin's
//!   `place()` stores on,
//! - every reply's in-band hop count equals the twin route's
//!   `physical_hops()`,
//! - after the workload, every switch's `packets_processed` counter
//!   matches the twin's — the TCP path exercised the data plane
//!   *exactly* as the in-process walk does, packet for packet,
//! - graceful shutdown joins every worker and loses nothing.

use gred::{GredConfig, GredNetwork};
use gred_cluster::{Cluster, ClusterConfig, ClusterHealth};
use gred_hash::DataId;
use gred_net::{waxman_topology, ServerPool, WaxmanConfig};
use std::collections::HashMap;

const SEED: u64 = 2019;
const SWITCHES: usize = 16;
const OPS: usize = 200;

fn build_network() -> GredNetwork {
    let (topo, _) = waxman_topology(&WaxmanConfig::with_switches(SWITCHES, SEED));
    let pool = ServerPool::uniform(SWITCHES, 2, u64::MAX);
    let cfg = GredConfig {
        auto_extend: false,
        ..GredConfig::with_iterations(8).seeded(SEED)
    };
    GredNetwork::build(topo, pool, cfg).expect("seeded network builds")
}

/// Deterministic access-switch sequence (no RNG state shared with the
/// network build).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

#[test]
fn loopback_cluster_matches_the_in_process_data_plane() {
    // `net` boots the cluster; `twin` is an identical build that walks
    // every request in-process for comparison. Both are deterministic
    // functions of SEED.
    let net = build_network();
    let mut twin = build_network();
    for plane in twin.dataplanes() {
        plane.reset_counters();
    }

    let cluster = Cluster::boot(&net, ClusterConfig::default()).expect("cluster boots");
    assert_eq!(cluster.len(), SWITCHES);
    let members = net.members().to_vec();
    assert!(members.len() > 1, "seeded build keeps several DT members");

    let mut lcg = Lcg(SEED);
    let mut clients: HashMap<usize, gred_cluster::Client> = HashMap::new();

    // Place OPS ids through rotating access members.
    for i in 0..OPS {
        let id = DataId::new(format!("loopback/{i}"));
        let payload = format!("payload/{SEED}/{i}");
        let access = members[lcg.next() as usize % members.len()];
        let client = match clients.entry(access) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(cluster.client(access).expect("client connects"))
            }
        };

        let reply = client
            .place(&id, payload.clone().into_bytes())
            .unwrap_or_else(|e| panic!("place {i} via {access} failed: {e}"));
        let receipt = twin
            .place(&id, payload.into_bytes(), access)
            .expect("twin placement succeeds");

        assert!(reply.is_hit(), "place {i} not acked");
        assert_eq!(
            reply.ack_server(),
            Some(receipt.server),
            "place {i}: TCP ack and in-process receipt disagree on the server"
        );
        assert_eq!(
            u32::from(reply.hops),
            receipt.route.physical_hops(),
            "place {i}: TCP hop count diverges from the in-process route"
        );
    }

    // Retrieve all OPS ids from a client attached to one (seeded-random)
    // member node.
    let retrieval_access = members[lcg.next() as usize % members.len()];
    let mut reader = cluster
        .client(retrieval_access)
        .expect("retrieval client connects");
    for i in 0..OPS {
        let id = DataId::new(format!("loopback/{i}"));
        let reply = reader
            .retrieve(&id)
            .unwrap_or_else(|e| panic!("retrieve {i} via {retrieval_access} failed: {e}"));
        let expected = twin
            .retrieve(&id, retrieval_access)
            .expect("twin retrieval hits");

        assert!(reply.is_hit(), "retrieve {i}: lost over TCP");
        assert_eq!(
            reply.payload.as_ref(),
            expected.payload.as_ref(),
            "retrieve {i}: payload corrupted in transit"
        );
        assert_eq!(
            u32::from(reply.hops),
            expected.route.physical_hops(),
            "retrieve {i}: TCP hop count diverges from the in-process route"
        );
    }

    // The TCP path drove every switch's pipeline exactly as the twin's
    // in-process walk did: same decisions, same relays, per switch.
    for switch in 0..SWITCHES {
        assert_eq!(
            cluster.node(switch).packets_processed(),
            twin.dataplanes()[switch].packets_processed(),
            "switch {switch}: packets_processed diverges from the twin"
        );
    }

    // Graceful shutdown: every worker joins, nothing was lost.
    drop(clients);
    drop(reader);
    let report = cluster.shutdown();
    assert_eq!(report.total_errors(), 0, "zero lost requests required");
    assert_eq!(
        report.stored_items(),
        OPS,
        "every placed id is stored exactly once"
    );
    assert!(
        report.workers_joined() > 0,
        "shutdown must join the connection workers"
    );
    assert_eq!(
        report.total_requests(),
        report.nodes.iter().map(|n| n.requests).sum::<u64>()
    );
}

/// Batched parity: the same 200-op workload shipped as pipelined batch
/// frames (bursts of `place_many`/`retrieve_many`) must drive the data
/// plane *identically* to sending every packet singly — same ack
/// servers, same hop counts, same per-switch `packets_processed` as the
/// in-process twin that walks each request one at a time. This is the
/// batch ≡ singles acceptance bar for the batched transport.
#[test]
fn pipelined_batches_match_the_in_process_data_plane() {
    const BURST: usize = 25;

    let net = build_network();
    let mut twin = build_network();
    for plane in twin.dataplanes() {
        plane.reset_counters();
    }

    let cluster = Cluster::boot(&net, ClusterConfig::default()).expect("cluster boots");
    let members = net.members().to_vec();
    let mut lcg = Lcg(SEED);
    let mut clients: HashMap<usize, gred_cluster::Client> = HashMap::new();

    // Place OPS ids in bursts of BURST, each burst entering through one
    // rotating access member; the twin places the same ids singly from
    // the same access node.
    for burst in 0..OPS / BURST {
        let access = members[lcg.next() as usize % members.len()];
        let items: Vec<(gred_hash::DataId, bytes::Bytes)> = (0..BURST)
            .map(|j| {
                let i = burst * BURST + j;
                (
                    DataId::new(format!("batched/{i}")),
                    bytes::Bytes::from(format!("payload/{SEED}/{i}")),
                )
            })
            .collect();
        let client = clients
            .entry(access)
            .or_insert_with(|| cluster.client(access).expect("client connects"));
        let replies = client
            .place_many(&items)
            .unwrap_or_else(|e| panic!("burst {burst} via {access} failed: {e}"));
        assert_eq!(replies.len(), items.len());
        for (j, ((id, payload), reply)) in items.iter().zip(&replies).enumerate() {
            let receipt = twin
                .place(id, payload.to_vec(), access)
                .expect("twin placement succeeds");
            assert!(reply.is_hit(), "burst {burst} item {j} not acked");
            assert_eq!(
                reply.ack_server(),
                Some(receipt.server),
                "burst {burst} item {j}: batched ack disagrees with the twin's server"
            );
            assert_eq!(
                u32::from(reply.hops),
                receipt.route.physical_hops(),
                "burst {burst} item {j}: batched hop count diverges from the twin"
            );
        }
    }

    // Retrieve all OPS ids as one big pipelined burst (several chunks
    // deep) from a single seeded-random access member.
    let retrieval_access = members[lcg.next() as usize % members.len()];
    let mut reader = cluster
        .client(retrieval_access)
        .expect("retrieval client connects");
    let ids: Vec<gred_hash::DataId> = (0..OPS)
        .map(|i| DataId::new(format!("batched/{i}")))
        .collect();
    let replies = reader
        .retrieve_many(&ids)
        .unwrap_or_else(|e| panic!("batched retrieval via {retrieval_access} failed: {e}"));
    assert_eq!(replies.len(), OPS);
    for (i, (id, reply)) in ids.iter().zip(&replies).enumerate() {
        let expected = twin
            .retrieve(id, retrieval_access)
            .expect("twin retrieval hits");
        assert!(reply.is_hit(), "batched retrieve {i}: lost over TCP");
        assert_eq!(
            reply.payload.as_ref(),
            expected.payload.as_ref(),
            "batched retrieve {i}: payload corrupted in transit"
        );
        assert_eq!(
            u32::from(reply.hops),
            expected.route.physical_hops(),
            "batched retrieve {i}: hop count diverges from the twin"
        );
    }

    // Batch ≡ singles down to the per-switch packet counters: grouping
    // packets into frames and peer RPCs must not add, drop, or reroute
    // a single pipeline decision.
    for switch in 0..SWITCHES {
        assert_eq!(
            cluster.node(switch).packets_processed(),
            twin.dataplanes()[switch].packets_processed(),
            "switch {switch}: batched packets_processed diverges from the twin"
        );
    }

    drop(clients);
    drop(reader);
    let report = cluster.shutdown();
    assert_eq!(report.total_errors(), 0, "zero lost requests required");
    assert_eq!(
        report.stored_items(),
        OPS,
        "every placed id is stored exactly once"
    );
}

/// Contention variant: 8 client threads hammer a 4-switch cluster at
/// once, so every node serves several concurrent client connections
/// while answering nested peer RPCs over the same multiplexed links.
///
/// Under the old one-connection-per-peer design a busy link forced an
/// emergency one-shot TCP connection per overlapping request; the
/// multiplexed links must absorb the whole burst — the test asserts the
/// `oneshot_fallbacks` counter stayed at zero — without corrupting a
/// single payload.
#[test]
fn concurrent_clients_share_multiplexed_links_without_fallbacks() {
    const CONTENTION_SWITCHES: usize = 4;
    const CLIENT_THREADS: usize = 8;
    const OPS_PER_THREAD: usize = 25;

    let (topo, _) = waxman_topology(&WaxmanConfig::with_switches(CONTENTION_SWITCHES, SEED));
    let pool = ServerPool::uniform(CONTENTION_SWITCHES, 2, u64::MAX);
    let cfg = GredConfig {
        auto_extend: false,
        ..GredConfig::with_iterations(8).seeded(SEED)
    };
    let net = GredNetwork::build(topo, pool, cfg).expect("seeded network builds");
    let cluster = Cluster::boot(&net, ClusterConfig::default()).expect("cluster boots");
    let members = net.members().to_vec();

    // Every thread places its own ids through its own access node, then
    // reads back every one of them and checks payload parity.
    std::thread::scope(|scope| {
        for t in 0..CLIENT_THREADS {
            let access = members[t % members.len()];
            let cluster = &cluster;
            scope.spawn(move || {
                let mut client = cluster.client(access).expect("client connects");
                for i in 0..OPS_PER_THREAD {
                    let id = DataId::new(format!("contention/{t}/{i}"));
                    let payload = format!("payload/{t}/{i}");
                    let reply = client
                        .place(&id, payload.clone().into_bytes())
                        .unwrap_or_else(|e| panic!("thread {t} place {i} failed: {e}"));
                    assert!(reply.is_hit(), "thread {t} place {i} not acked");
                }
                for i in 0..OPS_PER_THREAD {
                    let id = DataId::new(format!("contention/{t}/{i}"));
                    let reply = client
                        .retrieve(&id)
                        .unwrap_or_else(|e| panic!("thread {t} retrieve {i} failed: {e}"));
                    assert!(reply.is_hit(), "thread {t} retrieve {i}: lost");
                    assert_eq!(
                        reply.payload.as_ref(),
                        format!("payload/{t}/{i}").as_bytes(),
                        "thread {t} retrieve {i}: payload corrupted under contention"
                    );
                }
            });
        }
    });

    let report = cluster.shutdown();
    assert_eq!(report.total_errors(), 0, "zero lost requests required");
    assert_eq!(
        report.stored_items(),
        CLIENT_THREADS * OPS_PER_THREAD,
        "every placed id is stored exactly once"
    );
    let hot = report.hot_stats();
    assert_eq!(
        hot.oneshot_fallbacks, 0,
        "the multiplexed links must absorb the burst without emergency \
         one-shot connections; got {hot}"
    );
    assert_eq!(
        hot.link_reconnects, 0,
        "no link should have failed during a healthy run; got {hot}"
    );
    assert!(
        hot.frames_decoded > 0,
        "hot-path counters must be live; got {hot}"
    );
}

/// Stats-scrape parity: after the standard 200-op workload, each node's
/// wire-scraped `StatsSnapshot` must be *identical* to the in-process
/// twin read from the same node object — field for field, including the
/// full `NodeHotStats` block and the per-link counters. The scrape
/// itself must not perturb what it measures: `Stats` frames are served
/// inline on the reactor, before the request counter, on a fresh
/// connection whose first response reuses no encode scratch.
#[test]
fn wire_scraped_stats_match_the_in_process_twin() {
    let net = build_network();
    let cluster = Cluster::boot(&net, ClusterConfig::default()).expect("cluster boots");
    let members = net.members().to_vec();

    let mut lcg = Lcg(SEED);
    let mut clients: HashMap<usize, gred_cluster::Client> = HashMap::new();
    for i in 0..OPS {
        let id = DataId::new(format!("parity/{i}"));
        let access = members[lcg.next() as usize % members.len()];
        let client = match clients.entry(access) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(cluster.client(access).expect("client connects"))
            }
        };
        client
            .place(&id, format!("payload/{i}").into_bytes())
            .unwrap_or_else(|e| panic!("place {i} failed: {e}"));
        client
            .retrieve(&id)
            .unwrap_or_else(|e| panic!("retrieve {i} failed: {e}"));
    }

    // Workload clients stay connected so the connection gauge cannot
    // move between the wire scrape and the in-process read.
    for switch in 0..cluster.len() {
        let mut scraper = cluster.client(switch).expect("scrape client connects");
        let wire = scraper.scrape().expect("node answers the scrape");
        let twin = cluster.node(switch).stats_snapshot();

        assert_eq!(wire.switch, switch as u32);
        assert_eq!(
            wire.hot, twin.hot,
            "node {switch}: wire hot-path counters diverge from the twin"
        );
        assert_eq!(
            (wire.requests, wire.forwarded, wire.relayed, wire.delivered, wire.errors),
            (twin.requests, twin.forwarded, twin.relayed, twin.delivered, twin.errors),
            "node {switch}: routing counters diverge"
        );
        assert_eq!(
            (wire.stored_items, wire.table_rows),
            (twin.stored_items, twin.table_rows),
            "node {switch}: store/table accounting diverges"
        );
        assert_eq!(
            (wire.open_connections, wire.queued_bytes, wire.dispatch_workers),
            (twin.open_connections, twin.queued_bytes, twin.dispatch_workers),
            "node {switch}: reactor gauges diverge"
        );
        assert_eq!(
            wire.links, twin.links,
            "node {switch}: per-link counters diverge"
        );
        assert_eq!(wire.queued_bytes, 0, "node {switch}: idle node has a write backlog");
    }

    drop(clients);
    let report = cluster.shutdown();
    assert_eq!(report.total_errors(), 0);
}

/// Flash crowd: a cold key suddenly goes viral in one *region* — every
/// request enters through a few neighboring access nodes, none of them
/// the owner. The sim-layer twin (`flash_crowd_request_load` in
/// `gred-sim`) shows the raw request pile-up; here the read cache must
/// absorb it, and the proof is counters scraped **over the wire**:
///
/// - once each regional node has seen the key, the crowd converges to a
///   100% cache hit rate — zero further misses cluster-wide,
/// - a version bump of the viral key invalidates every peer's cache
///   (`invalidations_rx` rises by exactly n−1 for the one clean write)
///   and **no read ever returns the stale bytes**,
/// - the crowd re-converges on the new version just as fast.
#[test]
fn flash_crowd_cache_converges_without_stale_serves() {
    const ROUNDS: usize = 25;
    const REGION: usize = 3;

    let net = build_network();
    let cluster = Cluster::boot(&net, ClusterConfig::default()).expect("cluster boots");
    let members = net.members().to_vec();

    let viral = DataId::new("flash/viral");
    let v1 = b"breaking-v1".to_vec();
    let v2 = b"breaking-v2".to_vec();

    let mut writer = cluster.client(members[0]).expect("writer connects");
    let ack = writer.place(&viral, v1.clone()).expect("viral key places");
    assert!(ack.is_hit() && ack.is_clean(), "healthy write must be clean");
    let owner = ack.ack_server().expect("ack names the owner").switch as usize;

    // Pick the region: access members (never the owner) whose read path
    // actually forwards the viral key and so probes + fills the read
    // cache. One warm read per candidate both qualifies the node and
    // leaves its cache hot — the crowd then starts from steady state.
    let mut region: Vec<(usize, gred_cluster::Client)> = Vec::new();
    for &m in members.iter().filter(|&&m| m != owner) {
        if region.len() == REGION {
            break;
        }
        let misses_before = cluster.node(m).stats_snapshot().hot.cache_misses;
        let mut client = cluster.client(m).expect("regional client connects");
        let reply = client.retrieve(&viral).expect("warm read answers");
        assert!(reply.is_hit());
        assert_eq!(reply.payload.as_ref(), &v1[..]);
        if cluster.node(m).stats_snapshot().hot.cache_misses > misses_before {
            region.push((m, client));
        }
    }
    assert_eq!(
        region.len(),
        REGION,
        "seeded topology must yield {REGION} caching access members"
    );

    let scrape = |cluster: &Cluster| cluster.scrape().expect("every node answers the scrape");

    // Phase 1 — the crowd hits warm caches: every read is a hit, zero
    // misses anywhere, and the wire-scraped counters prove it.
    let window = gred_testkit::CounterWindow::open(scrape(&cluster));
    for _ in 0..ROUNDS {
        for (m, client) in &mut region {
            let reply = client.retrieve(&viral).expect("flash read answers");
            assert!(reply.is_hit(), "flash read via {m} lost");
            assert_eq!(
                reply.payload.as_ref(),
                &v1[..],
                "flash read via {m} corrupted"
            );
        }
    }
    let crowd = scrape(&cluster);
    let reads = (ROUNDS * REGION) as u64;
    assert_eq!(
        window.delta(&crowd, |s| s.hot.cache_hits),
        reads,
        "a warm regional crowd must be absorbed entirely by the caches"
    );
    window.assert_flat(&crowd, |s| s.hot.cache_misses, "flash reads on warm caches");
    let after = ClusterHealth::aggregate(&crowd);

    // Phase 2 — the story develops: v2 overwrites the viral key. The
    // one clean write must invalidate every peer's cache, and not a
    // single subsequent read may serve the stale v1 bytes.
    let ack = writer.place(&viral, v2.clone()).expect("v2 write lands");
    assert!(ack.is_hit() && ack.is_clean(), "v2 write must be clean");
    let healed = scrape(&cluster);
    assert_eq!(
        ClusterHealth::aggregate(&healed).invalidations_rx - after.invalidations_rx,
        (cluster.len() - 1) as u64,
        "one clean write must invalidate exactly the n-1 peers"
    );

    // One refill round: every regional node (and any cache-probing
    // relay on its path to the owner) misses once and re-fills — but
    // serves v2, never the stale bytes.
    let window = gred_testkit::CounterWindow::open(healed);
    for (m, client) in &mut region {
        let reply = client.retrieve(&viral).expect("refill read answers");
        assert!(reply.is_hit(), "refill read via {m} lost");
        assert_eq!(
            reply.payload.as_ref(),
            &v2[..],
            "STALE SERVE: refill via {m} returned pre-invalidation bytes"
        );
    }
    let refilled = scrape(&cluster);
    assert!(
        window.delta(&refilled, |s| s.hot.cache_misses) >= REGION as u64,
        "the invalidation must have emptied every regional cache"
    );

    // Re-converged: the crowd keeps coming and is once again absorbed
    // entirely by the caches — zero further misses, all v2.
    let window = gred_testkit::CounterWindow::open(refilled);
    for round in 0..ROUNDS {
        for (m, client) in &mut region {
            let reply = client.retrieve(&viral).expect("post-write read answers");
            assert!(reply.is_hit(), "post-write read via {m} lost");
            assert_eq!(
                reply.payload.as_ref(),
                &v2[..],
                "STALE SERVE: round {round} via {m} returned pre-invalidation bytes"
            );
        }
    }
    let after2 = scrape(&cluster);
    window.assert_flat(
        &after2,
        |s| s.hot.cache_misses,
        "one refill round must fully re-converge the caches",
    );
    assert_eq!(
        window.delta(&after2, |s| s.hot.cache_hits),
        reads,
        "the re-converged crowd is cache-absorbed again"
    );

    drop(writer);
    drop(region);
    let report = cluster.shutdown();
    assert_eq!(report.total_errors(), 0);
}

/// A scrape storm is free: eight clients hammering `Stats` against
/// every node, concurrently with a read burst, must (a) never spawn a
/// dispatch worker beyond what the warm-up already spawned — stats are
/// served inline on the reactor — (b) leave the request counter to the
/// workload alone, and (c) not perturb a single reply of the
/// simultaneous burst (same payloads, same hop counts as the calm run).
#[test]
fn scrape_storm_spawns_no_workers_and_preserves_ordering() {
    const STORM_CLIENTS: usize = 8;
    const SCRAPES_EACH: usize = 30;
    const KEYS: usize = 40;

    let net = build_network();
    let cluster = Cluster::boot(&net, ClusterConfig::default()).expect("cluster boots");
    let members = net.members().to_vec();
    let access = members[0];

    let ids: Vec<DataId> = (0..KEYS).map(|i| DataId::new(format!("storm/{i}"))).collect();
    let mut writer = cluster.client(access).expect("client connects");
    for (i, id) in ids.iter().enumerate() {
        writer
            .place(id, format!("payload/{i}").into_bytes())
            .expect("placement succeeds");
    }

    // Warm-up pass: first reads fill the access node's cache, so every
    // later pass (calm and stormed alike) runs against the same warm
    // cache state and must behave identically.
    for id in &ids {
        assert!(writer.retrieve(id).expect("warm-up read answers").is_hit());
    }

    let total_requests = |cluster: &Cluster| -> u64 {
        (0..cluster.len())
            .map(|s| cluster.node(s).stats_snapshot().requests)
            .sum()
    };

    // Calm pass: the expected answer for every read, and the request
    // accounting one burst costs with nobody scraping.
    let calm_base = total_requests(&cluster);
    let calm: Vec<(Vec<u8>, u16)> = ids
        .iter()
        .map(|id| {
            let reply = writer.retrieve(id).expect("calm retrieval answers");
            assert!(reply.is_hit());
            (reply.payload.to_vec(), reply.hops)
        })
        .collect();
    let calm_cost = total_requests(&cluster) - calm_base;

    let workers_before: Vec<u32> = (0..cluster.len())
        .map(|s| {
            let mut c = cluster.client(s).expect("scrape client connects");
            c.scrape().expect("scrape answers").dispatch_workers
        })
        .collect();
    let requests_before = total_requests(&cluster);

    // Storm: 8 clients × every node × SCRAPES_EACH, racing a burst of
    // the same reads on the workload connection.
    std::thread::scope(|scope| {
        for _ in 0..STORM_CLIENTS {
            let cluster = &cluster;
            scope.spawn(move || {
                for s in 0..cluster.len() {
                    let mut c = cluster.client(s).expect("storm client connects");
                    for _ in 0..SCRAPES_EACH / cluster.len() {
                        let snap = c.scrape().expect("storm scrape answers");
                        assert_eq!(snap.switch, s as u32);
                    }
                }
            });
        }
        for (id, (payload, hops)) in ids.iter().zip(&calm) {
            let reply = writer.retrieve(id).expect("stormed retrieval answers");
            assert!(reply.is_hit(), "read of {id} lost under the scrape storm");
            assert_eq!(
                reply.payload.as_ref(),
                &payload[..],
                "read of {id} perturbed by the scrape storm"
            );
            assert_eq!(
                reply.hops, *hops,
                "read of {id} rerouted under the scrape storm"
            );
        }
    });

    let workers_after: Vec<u32> = (0..cluster.len())
        .map(|s| {
            let mut c = cluster.client(s).expect("scrape client connects");
            c.scrape().expect("scrape answers").dispatch_workers
        })
        .collect();
    assert_eq!(
        workers_before, workers_after,
        "a scrape storm must never spawn dispatch workers"
    );
    assert_eq!(
        total_requests(&cluster) - requests_before,
        calm_cost,
        "an identical burst must cost identical request accounting — \
         {STORM_CLIENTS} storm clients' scrapes leaked into the counter"
    );

    let report = cluster.shutdown();
    assert_eq!(report.total_errors(), 0);
}
