//! Property-based check that the threaded control-plane build is a pure
//! optimization: for any topology, seed, and thread count, the network it
//! produces is bit-identical to the serial build — same virtual positions,
//! same Delaunay adjacency, same installed forwarding entries on every
//! switch.

use gred::{GredConfig, GredNetwork};
use gred_dataplane::{DtTuple, NeighborEntry};
use gred_geometry::Point2;
use gred_net::{waxman_topology, ServerPool, WaxmanConfig};
use proptest::prelude::*;

type Fingerprint = (
    Vec<(usize, Point2)>,
    Vec<(usize, usize)>,
    Vec<(Vec<NeighborEntry>, Vec<DtTuple>)>,
);

/// Every artifact the build pipeline produces, in a directly comparable
/// form. Relay tables are BTreeMap-backed, so iteration order is already
/// canonical.
fn fingerprint(net: &GredNetwork) -> Fingerprint {
    let positions = net
        .members()
        .iter()
        .map(|&m| (m, net.position_of_switch(m).expect("member has a position")))
        .collect();
    let edges = net.dt().edges();
    let tables = net
        .dataplanes()
        .iter()
        .map(|dp| {
            (
                dp.neighbor_entries().copied().collect::<Vec<_>>(),
                dp.relay_entries().copied().collect::<Vec<_>>(),
            )
        })
        .collect();
    (positions, edges, tables)
}

fn build(switches: usize, seed: u64, iters: usize, threads: usize) -> GredNetwork {
    let (topo, _) = waxman_topology(&WaxmanConfig::with_switches(switches, seed));
    let pool = ServerPool::uniform(switches, 2, u64::MAX);
    let config = GredConfig::with_iterations(iters)
        .seeded(seed)
        .threads(threads);
    GredNetwork::build(topo, pool, config).expect("Waxman topologies are connected")
}

fn build_landmark(
    switches: usize,
    seed: u64,
    iters: usize,
    threads: usize,
    landmarks: usize,
) -> GredNetwork {
    let (topo, _) = waxman_topology(&WaxmanConfig::with_switches(switches, seed));
    let pool = ServerPool::uniform(switches, 2, u64::MAX);
    let config = GredConfig::with_iterations(iters)
        .seeded(seed)
        .threads(threads)
        .landmarks(landmarks);
    GredNetwork::build(topo, pool, config).expect("Waxman topologies are connected")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// threads=N must reproduce threads=1 exactly, across random network
    /// shapes, RNG seeds, and regulation depths.
    #[test]
    fn threaded_build_matches_serial_build(
        switches in 5usize..28,
        seed in 0u64..1000,
        iters in prop_oneof![Just(0usize), Just(5), Just(15)],
        threads in 2usize..9,
    ) {
        let serial = fingerprint(&build(switches, seed, iters, 1));
        let threaded = fingerprint(&build(switches, seed, iters, threads));
        prop_assert_eq!(serial, threaded);
    }

    /// The landmark embedding path must be equally thread-count
    /// independent: batched farthest-point sampling, trilateration, and
    /// installation are all fixed-merge-order parallel maps.
    #[test]
    fn threaded_landmark_build_matches_serial_build(
        switches in 30usize..48,
        seed in 0u64..1000,
        landmarks in 8usize..20,
        threads in 2usize..9,
    ) {
        let serial = fingerprint(&build_landmark(switches, seed, 5, 1, landmarks));
        let threaded = fingerprint(&build_landmark(switches, seed, 5, threads, landmarks));
        prop_assert_eq!(serial, threaded);
    }

    /// When `k >= members`, the landmark knob must be a no-op: the build
    /// falls back to the exact classical embedding bit for bit.
    #[test]
    fn oversized_landmark_count_falls_back_to_exact(
        switches in 5usize..20,
        seed in 0u64..1000,
        threads in 1usize..5,
    ) {
        let exact = fingerprint(&build(switches, seed, 5, threads));
        let fallback = fingerprint(&build_landmark(switches, seed, 5, threads, 100));
        prop_assert_eq!(exact, fallback);
    }
}
