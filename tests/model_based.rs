//! Tier-1 model-based suite: seeded randomized schedules against a real
//! `GredNetwork` with the `gred-testkit` reference oracle, all four
//! invariant families checked after every operation.
//!
//! The seed base is overridable with `GRED_MODEL_SEED_BASE` so CI can run
//! disjoint seed matrices without a code change. A failing schedule
//! writes its one-line reproduction command to
//! `target/model-based-repro.txt` (collected as a CI artifact) before
//! panicking with the same line.

use gred_testkit::{generate, Harness, Mutation};

const SEEDS: usize = 50;
const OPS: usize = 200;
const DEFAULT_SEED_BASE: u64 = 0x6ED0;

fn seed_base() -> u64 {
    std::env::var("GRED_MODEL_SEED_BASE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_SEED_BASE)
}

/// Records a failing run where CI can pick it up, then panics with the
/// reproduction line so the test log carries it too.
fn fail_with_repro(outcome: &gred_testkit::RunOutcome) -> ! {
    let failure = outcome.failure.as_ref().expect("caller checked");
    let line = outcome.repro_line();
    let report = format!(
        "{line}\nstep {} ({:?}): {}\n",
        failure.step,
        failure.op,
        failure.violations.join("; ")
    );
    let _ = std::fs::create_dir_all("target");
    let _ = std::fs::write("target/model-based-repro.txt", &report);
    panic!(
        "invariant violation at step {} ({:?}):\n  {}\nreproduce with: {line}",
        failure.step,
        failure.op,
        failure.violations.join("\n  ")
    );
}

#[test]
fn fifty_seeded_schedules_hold_every_invariant() {
    let harness = Harness::default();
    let base = seed_base();
    for i in 0..SEEDS as u64 {
        let outcome = harness.run_seeded(base + i, OPS, None);
        if outcome.failure.is_some() {
            fail_with_repro(&outcome);
        }
        assert!(
            outcome.stats.placed > 0 && outcome.stats.retrieved > 0,
            "seed {} exercised no data path",
            base + i
        );
    }
}

#[test]
fn schedule_generation_is_a_pure_function_of_the_seed() {
    let base = seed_base();
    for seed in [base, base + 17, base + 999] {
        assert_eq!(generate(seed, OPS), generate(seed, OPS));
        // Prefix property: a longer schedule extends a shorter one, so a
        // failing run can be reproduced at any truncation.
        let long = generate(seed, OPS);
        let short = generate(seed, OPS / 2);
        assert_eq!(&long[..OPS / 2], &short[..]);
    }
}

#[test]
fn injected_store_corruption_is_caught_with_a_deterministic_repro() {
    let harness = Harness::default();
    let seed = seed_base() + 1000;
    let mutation = Some(Mutation::DropItem { step: 60 });

    let first = harness.run_seeded(seed, 120, mutation);
    assert!(first.mutation_applied, "fault had nothing to corrupt");
    let failure = first.failure.as_ref().expect("checker must catch the bug");
    assert_eq!(failure.step, 60, "failure must land on the injection step");
    assert!(
        failure.violations.iter().any(|v| v.contains("retriev")),
        "expected a retrievability violation, got: {:?}",
        failure.violations
    );

    // The printed repro line (same seed, same ops) replays to the exact
    // same failure.
    println!("caught injected bug; repro: {}", first.repro_line());
    let replay = harness.run_seeded(seed, 120, mutation);
    assert_eq!(
        first, replay,
        "replay from the repro seed must be identical"
    );
}

#[test]
fn injected_table_corruption_is_caught_deterministically() {
    let harness = Harness::default();
    let seed = seed_base() + 2000;
    let mutation = Some(Mutation::DropNeighborEntry { step: 40 });

    let first = harness.run_seeded(seed, 80, mutation);
    assert!(first.mutation_applied, "fault had nothing to corrupt");
    let failure = first.failure.as_ref().expect("checker must catch the bug");
    assert_eq!(failure.step, 40);

    let replay = harness.run_seeded(seed, 80, mutation);
    assert_eq!(first, replay);
}

#[test]
fn failing_schedules_shrink_to_a_minimal_subsequence() {
    let harness = Harness::default();
    let seed = seed_base() + 3000;
    let mutation = Some(Mutation::DropItem { step: 10 });
    let ops = generate(seed, 60);

    let outcome = harness.replay(seed, &ops, mutation);
    assert!(
        outcome.failure.is_some(),
        "injected fault must fail the run"
    );

    let shrunk = harness.shrink(seed, &ops, mutation);
    assert!(
        shrunk.len() < ops.len(),
        "a 60-op schedule with one relevant item must shrink"
    );
    assert!(
        harness.replay(seed, &shrunk, mutation).failure.is_some(),
        "the shrunk schedule must still fail"
    );
}
