//! Connection-scale tier for the node reactor.
//!
//! The claim under test: one node holds 10k+ concurrent client
//! connections on a fixed thread budget (one reactor thread plus the
//! dispatch pool), answers every frame sent over them, and drains
//! cleanly with all of them still connected.
//!
//! The container's fd hard limit (20000, unraisable) cannot hold both
//! ends of 10k sockets in one process, so the client side runs as child
//! *herd* processes: the parent re-execs this test binary with
//! `--exact conn_herd` and a `GRED_CONN_HERD` environment gate. Each
//! herd opens its share of connections, drives live traffic on a
//! subset, and reports over a stdout/stdin line protocol:
//!
//! ```text
//!   herd → parent:  READY <frames-answered>
//!   parent → herd:  DRAIN
//!   herd → parent:  DRAINED <clean-eofs> <dirty-closes>
//! ```
//!
//! Repro: `cargo test -p gred-cluster --test connection_scale`

use bytes::Bytes;
use gred_cluster::frame::{encode_frame, FrameDecoder};
use gred_cluster::{Node, NodeConfig};
use gred_dataplane::{Packet, SwitchDataplane};
use gred_geometry::Point2;
use gred_hash::DataId;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::thread;
use std::time::{Duration, Instant};

/// Herd processes the parent spawns.
const HERDS: usize = 4;
/// Connections each herd holds open.
const CONNS_PER_HERD: usize = 2500;
/// Connections per herd that also carry live request traffic.
const LIVE_PER_HERD: usize = 64;
/// Request rounds each live connection performs.
const LIVE_ROUNDS: usize = 3;
/// Ceiling on threads the node may add to this process while serving
/// all 10k connections. Decisively smaller than one-per-connection: the
/// reactor is one thread and the all-local workload never grows the
/// dispatch pool.
const THREAD_BUDGET: usize = 16;

fn spawn_node(id: usize) -> Node {
    let plane = SwitchDataplane::new(id, Point2::new(0.5, 0.5), 2);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    Node::spawn(
        id,
        plane,
        vec![addr],
        listener,
        NodeConfig {
            log_dir: None,
            ..NodeConfig::default()
        },
    )
    .unwrap()
}

/// Process-wide thread count from `/proc/self/status`.
fn thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").unwrap();
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .expect("Threads line in /proc/self/status")
        .trim()
        .parse()
        .unwrap()
}

/// CPU ticks (utime + stime) a thread of this process has consumed.
fn thread_cpu_ticks(tid: u64) -> u64 {
    let stat = std::fs::read_to_string(format!("/proc/self/task/{tid}/stat")).unwrap();
    // Skip past "pid (comm) " — comm is bounded and ours has no spaces,
    // but parsing from the last ')' is robust either way.
    let rest = &stat[stat.rfind(')').unwrap() + 2..];
    let fields: Vec<&str> = rest.split_whitespace().collect();
    // stat fields 14 (utime) and 15 (stime) → indices 11 and 12 after
    // the three fields consumed by pid/comm/state.
    fields[11].parse::<u64>().unwrap() + fields[12].parse::<u64>().unwrap()
}

/// Finds the reactor thread of the node with `id` by its comm name
/// (truncated by the kernel to 15 characters).
fn reactor_tid(id: usize) -> u64 {
    let want: String = format!("gred-node-{id}-reactor").chars().take(15).collect();
    for entry in std::fs::read_dir("/proc/self/task").unwrap() {
        let entry = entry.unwrap();
        let comm = std::fs::read_to_string(entry.path().join("comm")).unwrap_or_default();
        if comm.trim_end() == want {
            return entry.file_name().to_string_lossy().parse().unwrap();
        }
    }
    panic!("no thread named {want} in /proc/self/task");
}

fn read_frame(stream: &mut TcpStream, decoder: &mut FrameDecoder) -> Bytes {
    let mut buf = [0u8; 4096];
    loop {
        if let Some(body) = decoder.next_frame().expect("well-framed response") {
            return body;
        }
        let n = stream.read(&mut buf).expect("node response read");
        assert_ne!(n, 0, "node closed the connection mid-request");
        decoder.feed(&buf[..n]);
    }
}

/// Reads lines from a herd's stdout until one contains `marker`
/// (libtest chatter is skipped), returning the rest of that line. The
/// marker is matched anywhere in the line, not at its start: under
/// `--nocapture` libtest prints `test conn_herd ... ` with no trailing
/// newline, so the herd's first marker arrives glued to that prefix.
fn wait_line(reader: &mut BufReader<ChildStdout>, marker: &str) -> String {
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).unwrap();
        assert_ne!(n, 0, "herd exited before printing {marker}");
        if let Some(pos) = line.find(marker) {
            return line[pos + marker.len()..].trim().to_string();
        }
    }
}

/// The tentpole acceptance test: 10k concurrent connections, bounded
/// threads, zero dropped frames, clean two-phase drain.
#[test]
fn ten_thousand_connections_on_bounded_threads() {
    let baseline_threads = thread_count();
    let mut node = spawn_node(0);
    let id = DataId::new("scale-key");
    let index = gred_hash::select_server(&id, 2);
    node.preload(id, index, Bytes::from_static(b"scale-payload"));
    let addr = node.addr();

    let exe = std::env::current_exe().unwrap();
    let mut children: Vec<Child> = (0..HERDS)
        .map(|_| {
            Command::new(&exe)
                .args(["--exact", "conn_herd", "--nocapture", "--test-threads=1"])
                .env("GRED_CONN_HERD", addr.to_string())
                .env("GRED_HERD_CONNS", CONNS_PER_HERD.to_string())
                .env("GRED_HERD_LIVE", LIVE_PER_HERD.to_string())
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .stderr(Stdio::inherit())
                .spawn()
                .expect("spawning a connection herd")
        })
        .collect();
    let mut readers: Vec<BufReader<ChildStdout>> = children
        .iter_mut()
        .map(|c| BufReader::new(c.stdout.take().unwrap()))
        .collect();

    // Phase 1: every herd fully connected and its live traffic answered.
    let mut answered = 0u64;
    for reader in &mut readers {
        answered += wait_line(reader, "READY").parse::<u64>().unwrap();
    }
    // Zero dropped frames: every request sent over the live subset got
    // its response (the herd asserts payload correctness per frame).
    assert_eq!(answered, (HERDS * LIVE_PER_HERD * LIVE_ROUNDS) as u64);

    // All 10k concurrent, on a bounded thread budget.
    assert_eq!(node.open_connections(), HERDS * CONNS_PER_HERD);
    let grown = thread_count().saturating_sub(baseline_threads);
    assert!(
        grown <= THREAD_BUDGET,
        "10k connections grew the process by {grown} threads \
         (budget {THREAD_BUDGET}) — connection workers are back"
    );
    assert_eq!(
        node.dispatch_workers_spawned(),
        0,
        "the all-local workload must be answered inline on the reactor"
    );

    // Phase 2: two-phase drain with all 10k still connected. Herds arm
    // EOF reads; the node shuts down; every socket must see a clean FIN.
    for child in &mut children {
        writeln!(child.stdin.as_mut().unwrap(), "DRAIN").unwrap();
    }
    let report = node.shutdown();
    assert_eq!(
        report.workers_joined, 1,
        "shutdown joins exactly the reactor thread"
    );

    let (mut clean, mut dirty) = (0usize, 0usize);
    for reader in &mut readers {
        let rest = wait_line(reader, "DRAINED");
        let mut parts = rest.split_whitespace();
        clean += parts.next().unwrap().parse::<usize>().unwrap();
        dirty += parts.next().unwrap().parse::<usize>().unwrap();
    }
    assert_eq!(dirty, 0, "drain must not reset connections");
    assert_eq!(clean, HERDS * CONNS_PER_HERD, "every socket sees clean EOF");
    for mut child in children {
        assert!(child.wait().unwrap().success(), "herd process failed");
    }
}

/// The busy-wait regression satellite: the old accept loop slept and
/// re-polled `poll_interval` forever; the reactor registers the listener
/// with epoll, so a node with zero traffic spends zero CPU.
#[test]
fn idle_node_reactor_burns_no_cpu() {
    let mut node = spawn_node(7);
    thread::sleep(Duration::from_millis(200)); // settle registrations
    let tid = reactor_tid(7);
    let before = thread_cpu_ticks(tid);
    thread::sleep(Duration::from_millis(500));
    let burned = thread_cpu_ticks(tid) - before;
    // Half a second idle must cost at most ~2 scheduler ticks (20ms) —
    // sleep-polling at any interval would show up here.
    assert!(
        burned <= 2,
        "idle reactor burned {burned} CPU ticks in 500ms"
    );
    node.shutdown();
}

/// Hidden herd body, run only when re-exec'd by the soak test above
/// (`GRED_CONN_HERD` carries the node address). A plain `cargo test`
/// run sees it pass as a no-op.
#[test]
fn conn_herd() {
    let Ok(addr) = std::env::var("GRED_CONN_HERD") else {
        return;
    };
    let addr: SocketAddr = addr.parse().unwrap();
    let conns: usize = std::env::var("GRED_HERD_CONNS").unwrap().parse().unwrap();
    let live: usize = std::env::var("GRED_HERD_LIVE").unwrap().parse().unwrap();

    let mut streams = Vec::with_capacity(conns);
    let deadline = Instant::now() + Duration::from_secs(60);
    while streams.len() < conns {
        match TcpStream::connect(addr) {
            Ok(s) => {
                s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
                streams.push(s);
            }
            Err(e) => {
                // Transient listen-backlog pressure while four herds
                // dial at once; retry until the deadline.
                assert!(Instant::now() < deadline, "connecting stalled: {e}");
                thread::sleep(Duration::from_millis(5));
            }
        }
    }

    // Live traffic on the first `live` connections; the rest idle.
    let id = DataId::new("scale-key");
    let request = encode_frame(&gred_dataplane::encode(&Packet::retrieval(id)));
    let mut decoders: Vec<FrameDecoder> = (0..live).map(|_| FrameDecoder::new()).collect();
    let mut answered = 0u64;
    for _ in 0..LIVE_ROUNDS {
        for (stream, decoder) in streams.iter_mut().zip(&mut decoders) {
            stream.write_all(&request).unwrap();
            let body = read_frame(stream, decoder);
            let reply = gred_dataplane::parse(&body).unwrap();
            assert_eq!(reply.status, gred_dataplane::ResponseStatus::Ok);
            assert_eq!(reply.payload.as_ref(), b"scale-payload");
            answered += 1;
        }
    }
    println!("READY {answered}");

    let mut line = String::new();
    std::io::stdin().read_line(&mut line).unwrap();
    assert_eq!(line.trim(), "DRAIN", "unexpected parent order");

    // Every connection must end in a clean FIN (read returns 0), not a
    // reset and not unsolicited data.
    let (mut clean, mut dirty) = (0usize, 0usize);
    let mut buf = [0u8; 256];
    for mut stream in streams {
        match stream.read(&mut buf) {
            Ok(0) => clean += 1,
            _ => dirty += 1,
        }
    }
    println!("DRAINED {clean} {dirty}");
}
