//! End-to-end integration: the full GRED lifecycle over generated
//! topologies, spanning every crate.

use bytes::Bytes;
use gred::{GredConfig, GredError, GredNetwork};
use gred_hash::DataId;
use gred_net::{waxman_topology, ServerPool, WaxmanConfig};

fn build(switches: usize, servers: usize, seed: u64) -> GredNetwork {
    let (topo, _) = waxman_topology(&WaxmanConfig::with_switches(switches, seed));
    let pool = ServerPool::uniform(switches, servers, u64::MAX);
    GredNetwork::build(topo, pool, GredConfig::default().seeded(seed)).expect("builds")
}

#[test]
fn lifecycle_place_retrieve_everywhere() {
    let mut net = build(25, 4, 1);
    let items = 300;
    for i in 0..items {
        let id = DataId::new(format!("e2e/{i}"));
        net.place(&id, format!("v{i}").into_bytes(), i % 25)
            .unwrap();
    }
    assert_eq!(net.store().total_items(), items as u64);

    // Every item retrievable from every 5th switch, contents intact.
    for i in 0..items {
        let id = DataId::new(format!("e2e/{i}"));
        for access in (0..25).step_by(5) {
            let got = net.retrieve(&id, access).unwrap();
            assert_eq!(got.payload.as_ref(), format!("v{i}").as_bytes());
        }
    }
}

#[test]
fn load_is_conserved_through_dynamics() {
    let mut net = build(15, 3, 2);
    for i in 0..200 {
        net.place(&DataId::new(format!("dyn/{i}")), Bytes::new(), i % 15)
            .unwrap();
    }
    let total_before: u64 = net.server_loads().iter().map(|&(_, l)| l).sum();
    assert_eq!(total_before, 200);

    let added = net.add_switch(&[0, 7], vec![u64::MAX, u64::MAX]).unwrap();
    let total_after_add: u64 = net.server_loads().iter().map(|&(_, l)| l).sum();
    assert_eq!(total_after_add, 200, "no item lost or duplicated on join");

    net.remove_switch(added).unwrap();
    let total_after_remove: u64 = net.server_loads().iter().map(|&(_, l)| l).sum();
    assert_eq!(
        total_after_remove, 200,
        "no item lost or duplicated on leave"
    );

    // Everything still retrievable.
    for i in 0..200 {
        net.retrieve(&DataId::new(format!("dyn/{i}")), 3).unwrap();
    }
}

#[test]
fn several_joins_and_leaves_in_sequence() {
    let mut net = build(12, 2, 3);
    for i in 0..100 {
        net.place(&DataId::new(format!("seq/{i}")), Bytes::new(), i % 12)
            .unwrap();
    }
    let mut added = Vec::new();
    for round in 0..3 {
        let s = net
            .add_switch(&[round, (round + 5) % 12], vec![u64::MAX])
            .unwrap();
        added.push(s);
    }
    // Remove an original member and one of the newcomers.
    let victim = net.members()[2];
    net.remove_switch(victim).unwrap();
    net.remove_switch(added[0]).unwrap();

    assert_eq!(net.store().total_items(), 100);
    let access = net.members()[0];
    for i in 0..100 {
        let got = net
            .retrieve(&DataId::new(format!("seq/{i}")), access)
            .unwrap();
        assert_ne!(got.server.switch, victim);
        assert_ne!(got.server.switch, added[0]);
    }
}

#[test]
fn no_cvt_variant_full_lifecycle() {
    let (topo, _) = waxman_topology(&WaxmanConfig::with_switches(20, 4));
    let pool = ServerPool::uniform(20, 3, u64::MAX);
    let mut net = GredNetwork::build(topo, pool, GredConfig::no_cvt()).unwrap();
    for i in 0..100 {
        let id = DataId::new(format!("nocvt/{i}"));
        net.place(&id, Bytes::new(), i % 20).unwrap();
        assert!(net.retrieve(&id, (i + 7) % 20).is_ok());
    }
}

#[test]
fn heterogeneous_pool_with_transit_switches() {
    // 10 switches, only 6 with servers; the rest pure transit.
    let (topo, _) = waxman_topology(&WaxmanConfig::with_switches(10, 5));
    let caps: Vec<Vec<u64>> = (0..10)
        .map(|s| {
            if s % 2 == 0 {
                vec![u64::MAX; 2]
            } else {
                vec![]
            }
        })
        .collect();
    let pool = ServerPool::from_capacities(caps);
    let mut net = GredNetwork::build(topo, pool, GredConfig::default()).unwrap();
    assert_eq!(net.members(), &[0, 2, 4, 6, 8]);

    for i in 0..80 {
        let id = DataId::new(format!("transit/{i}"));
        let access = net.members()[i % 5];
        let receipt = net.place(&id, Bytes::new(), access).unwrap();
        assert!(
            receipt.server.switch.is_multiple_of(2),
            "data only on storage switches"
        );
        let got = net.retrieve(&id, net.members()[(i + 2) % 5]).unwrap();
        assert_eq!(got.server, receipt.server);
    }
    // Transit switches reject access (no DT position)...
    assert!(matches!(
        net.retrieve(&DataId::new("transit/0"), 1),
        Err(GredError::InvalidDynamics { .. }) | Err(GredError::NotFound)
    ));
}

#[test]
fn replication_survives_membership_churn() {
    let mut net = build(20, 3, 6);
    let id = DataId::new("churn/profile");
    net.place_replicated(&id, b"v1".as_ref(), 3, 0).unwrap();

    // Drop two different switches hosting copies (when possible).
    for _ in 0..2 {
        let holder = net
            .store()
            .all_locations()
            .into_iter()
            .find(|(_, stored)| stored.as_bytes().starts_with(id.as_bytes()))
            .map(|(s, _)| s.switch);
        if let Some(switch) = holder {
            if net.members().len() > 3 && net.is_member(switch) {
                net.remove_switch(switch).unwrap();
            }
        }
    }
    let access = net.members()[0];
    let got = net.retrieve_nearest(&id, 3, access).unwrap();
    assert_eq!(got.payload.as_ref(), b"v1");
}

#[test]
fn extension_workflow_across_crates() {
    // Tiny capacities to force extension traffic through the dataplane
    // rewrite entries (paper Tables I/II).
    let (topo, _) = waxman_topology(&WaxmanConfig::with_switches(8, 7));
    let pool = ServerPool::uniform(8, 2, 6);
    let mut net = GredNetwork::build(topo, pool, GredConfig::default()).unwrap();

    let mut placed = Vec::new();
    for i in 0..60 {
        let id = DataId::new(format!("ext/{i}"));
        match net.place(&id, Bytes::new(), i % 8) {
            Ok(_) => placed.push(id),
            Err(GredError::CapacityExceeded { .. })
            | Err(GredError::NoExtensionCandidate { .. })
            | Err(GredError::AlreadyExtended { .. }) => {}
            Err(e) => panic!("unexpected: {e}"),
        }
    }
    // Everything that was accepted is retrievable.
    for id in &placed {
        net.retrieve(id, 0).unwrap();
    }
    // Per-server load never exceeds capacity.
    for (server, load) in net.server_loads() {
        assert!(
            load <= net.server_capacity(server),
            "{server} over capacity: {load}"
        );
    }
}

#[test]
fn concurrent_retrievals_from_many_threads() {
    // `retrieve` takes &self — a populated network serves concurrent
    // readers. This also pins down that GredNetwork is Sync.
    fn assert_sync<T: Sync>() {}
    assert_sync::<GredNetwork>();

    let mut net = build(15, 3, 11);
    let mut ids = Vec::new();
    for i in 0..120 {
        let id = DataId::new(format!("conc/{i}"));
        net.place(&id, format!("v{i}").into_bytes(), i % 15)
            .unwrap();
        ids.push(id);
    }
    let net = &net;
    let ids = &ids;
    std::thread::scope(|scope| {
        for t in 0..8 {
            scope.spawn(move || {
                for (i, id) in ids.iter().enumerate() {
                    let access = (i + t) % 15;
                    let got = net.retrieve(id, access).unwrap();
                    assert_eq!(got.payload.as_ref(), format!("v{i}").as_bytes());
                }
            });
        }
    });
}

#[test]
fn expire_then_retrieve_is_not_found() {
    let mut net = build(10, 2, 13);
    let id = DataId::new("ephemeral");
    let receipt = net.place(&id, b"x".as_ref(), 0).unwrap();
    assert_eq!(net.expire(receipt.server, &id).unwrap().as_ref(), b"x");
    assert_eq!(net.retrieve(&id, 0).unwrap_err(), GredError::NotFound);
    // Expiring twice is a no-op.
    assert!(net.expire(receipt.server, &id).is_none());
}

#[test]
fn invariants_hold_through_full_lifecycle() {
    let mut net = build(18, 3, 21);
    assert_eq!(net.verify_invariants(), Vec::<String>::new(), "fresh build");

    for i in 0..150 {
        net.place(&DataId::new(format!("inv/{i}")), Bytes::new(), i % 18)
            .unwrap();
    }
    assert_eq!(
        net.verify_invariants(),
        Vec::<String>::new(),
        "after placements"
    );

    let victim = net.responsible_server(&DataId::new("inv/0"));
    net.extend_range(victim).unwrap();
    net.place(&DataId::new("inv/0"), Bytes::new(), 3).unwrap();
    assert_eq!(
        net.verify_invariants(),
        Vec::<String>::new(),
        "with extension"
    );

    let added = net.add_switch(&[0, 9], vec![u64::MAX; 3]).unwrap();
    assert_eq!(net.verify_invariants(), Vec::<String>::new(), "after join");

    net.remove_switch(added).unwrap();
    assert_eq!(net.verify_invariants(), Vec::<String>::new(), "after leave");

    net.retract_range(victim).unwrap();
    assert_eq!(
        net.verify_invariants(),
        Vec::<String>::new(),
        "after retraction"
    );
}

#[test]
fn invariant_checker_detects_planted_corruption() {
    let mut net = build(10, 2, 23);
    let id = DataId::new("planted");
    // Store an item on a server that cannot be its owner.
    let owner = net.responsible_server(&id);
    let wrong = gred_net::ServerId {
        switch: net
            .members()
            .iter()
            .copied()
            .find(|&m| m != owner.switch)
            .unwrap(),
        index: 0,
    };
    net.store_debug_insert(wrong, id);
    let problems = net.verify_invariants();
    assert_eq!(problems.len(), 1, "{problems:?}");
    assert!(problems[0].contains("stored on"));
}
